//! Crash-safe index persistence: versioned checksummed snapshots plus a
//! write-ahead journal.
//!
//! **Snapshot format.** A fixed 44-byte header — magic `SEMSNAP1`,
//! format version, vector width, cell count, vector count, payload length,
//! payload CRC32 and a CRC32 over the header itself — followed by the JSON
//! payload. Snapshots are written to a temp file in the same directory,
//! fsynced, atomically renamed over the target and the directory fsynced,
//! so a crash at any point leaves either the old snapshot or the new one,
//! never a half-written hybrid. Torn or bit-flipped snapshots fail the
//! checksum and are **rejected**, never silently loaded. Legacy plain-JSON
//! snapshots (pre-v1) are still readable.
//!
//! **Versions.** v3 (current) extends the JSON payload with the optional
//! SQ8 quantization sidecar (per-segment scales plus the u8 code matrix);
//! the header and framing are unchanged. v2 added the optional facet
//! layout ([`crate::facet::FacetLayout`]); v1 is the original fused
//! format. Both load via read-path migrations — absent fields
//! deserialise to the fused, unquantized defaults — and the next
//! [`IndexStore::save_snapshot`] rewrites them as v3. Writes always emit
//! v3; versions above v3 are rejected, never guessed at.
//!
//! **Journal.** Each acknowledged ingest appends one length+CRC framed
//! record (`{seq, vector}`) and fsyncs before reporting durability, so
//! every acknowledged ingest survives a crash. Recovery loads the snapshot
//! and replays the journal in order; a torn tail (partial final record) is
//! discarded — those records were never acknowledged — while corruption
//! *before* valid records is an error, because it would silently drop
//! acknowledged data. Records whose `seq` precedes the snapshot's vector
//! count are skipped, which makes replay idempotent when a crash lands
//! between the snapshot rename and the journal truncation. Saving a
//! snapshot compacts the journal back to empty.
//!
//! **Online compaction.** [`IndexStore::save_snapshot`] blocks ingest for
//! the whole encode+write, which a live-maintenance deployment cannot
//! afford. The online protocol splits the work:
//! [`IndexStore::begin_online_compaction`] flushes the batch buffer and
//! redirects subsequent appends to a *side journal*
//! (`<snapshot>.journal.side`, same frame format) so ingest continues
//! while the caller encodes a point-in-time clone off-lock; the side
//! records are then replayed into the clone
//! ([`IndexStore::side_records`]) and
//! [`IndexStore::commit_online_compaction`] renames the fresh snapshot in
//! and deletes first the main journal, then the side journal. Every step
//! is crash-safe by seq-idempotent replay — [`IndexStore::load`] replays
//! the main journal and then the side journal, skipping records the
//! snapshot already holds — and every step has a [`FaultPlan`] crash
//! point proving it.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use sem_obs::{Counter, Histogram, Registry};
use sem_train::atomic::{fsync_parent_dir, tmp_path, write_atomic_retry};
use sem_train::retry::{retry, RetryPolicy};
use serde::{Deserialize, Serialize};

use crate::error::ServeError;
use crate::fault::{CrashPoint, FaultPlan};
use crate::index::AnnIndex;

const MAGIC: &[u8; 8] = b"SEMSNAP1";
/// Newest snapshot format this build writes; every version from 1 up to
/// here is readable (v1 payloads lack the facet layout, v1/v2 lack the
/// SQ8 quantization sidecar).
const FORMAT_VERSION: u32 = 3;
const HEADER_LEN: usize = 44;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(a)
}

/// Whether an append has reached disk or still sits in the batch buffer.
///
/// Only [`Durability::Synced`] counts as *acknowledged*: a crash may
/// legitimately lose `Buffered` records, and the recovery invariant —
/// every acknowledged ingest survives — is stated over synced records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Durability {
    /// Record and everything before it are fsynced to the journal.
    Synced,
    /// Record is in the in-memory batch buffer; a crash loses it.
    Buffered,
}

/// One write-ahead journal record: the vector that was ingested and the id
/// (`seq`) the index assigned it.
#[derive(Serialize, Deserialize)]
struct JournalRecord {
    seq: u64,
    vector: Vec<f32>,
}

/// Outcome of [`IndexStore::load`]: the recovered index plus what the
/// journal replay saw.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered index (snapshot + replayed journal).
    pub index: AnnIndex,
    /// Journal records inserted on top of the snapshot.
    pub replayed: usize,
    /// Records skipped because the snapshot already contained them
    /// (compaction crashed before the journal was truncated).
    pub skipped: usize,
    /// `true` when a torn (partial, never-acknowledged) tail record was
    /// discarded.
    pub discarded_tail: bool,
}

/// Snapshot half of a [`VerifyReport`].
#[derive(Debug, Serialize)]
pub struct SnapshotReport {
    /// Snapshot file path.
    pub path: String,
    /// `"v3"`, `"v2"`, `"v1"`, `"legacy-json"`, `"missing"` or `"corrupt"`.
    pub format: String,
    /// Format version from the header (headered snapshots only).
    pub version: u32,
    /// Vector width from the header.
    pub dim: usize,
    /// IVF cell count from the header (0 = flat).
    pub nlist: usize,
    /// Vector count from the header.
    pub count: u64,
    /// Header checksum verdict.
    pub header_ok: bool,
    /// Payload checksum verdict.
    pub payload_ok: bool,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Per-facet segment checksums from the decoded payload (empty until
    /// every integrity check passes). Fused/v1 stores report the single
    /// `fused` segment.
    pub facets: Vec<crate::facet::FacetChecksum>,
    /// Per-segment checksums over the SQ8 code matrix (empty for
    /// unquantized stores or until every integrity check passes).
    pub quant: Vec<crate::facet::FacetChecksum>,
    /// First failed check, when any.
    pub error: Option<String>,
}

/// Journal half of a [`VerifyReport`].
#[derive(Debug, Serialize)]
pub struct JournalReport {
    /// Journal file path.
    pub path: String,
    /// Whether the journal file exists.
    pub present: bool,
    /// Frame-complete, checksum-valid records.
    pub valid_records: usize,
    /// Journal size in bytes.
    pub bytes: u64,
    /// A partial final record was found (tolerated on recovery).
    pub torn_tail: bool,
    /// Corruption *before* valid records (fatal on recovery), when any.
    pub error: Option<String>,
}

/// Operator-facing integrity report (`sem index verify`).
#[derive(Debug, Serialize)]
pub struct VerifyReport {
    /// Snapshot checks.
    pub snapshot: SnapshotReport,
    /// Journal checks.
    pub journal: JournalReport,
    /// Side-journal checks (present only while an online compaction is in
    /// flight or was interrupted by a crash; normally absent).
    pub side_journal: JournalReport,
    /// Journal tail length: records across both journals whose `seq` is
    /// at or past the snapshot's vector count — i.e. entries since the
    /// last snapshot, the work a compaction would fold in. This is the
    /// signal the maintenance layer's compaction scheduler (and `index
    /// probe --max-journal-entries`) keys off.
    pub tail_records: usize,
    /// `true` when the trio would recover cleanly.
    pub ok: bool,
}

/// Pre-registered handles for the store's observability: journal traffic,
/// fsync latency, snapshot writes and recovery behaviour. `None` until a
/// registry is attached — instrumentation must cost nothing when unused.
struct StoreMetrics {
    journal_appends: Arc<Counter>,
    journal_flushes: Arc<Counter>,
    fsync_ns: Arc<Histogram>,
    snapshot_saves: Arc<Counter>,
    snapshot_save_ns: Arc<Histogram>,
    compactions: Arc<Counter>,
    loads: Arc<Counter>,
    replayed: Arc<Counter>,
    skipped: Arc<Counter>,
    discarded_tails: Arc<Counter>,
}

impl StoreMetrics {
    fn new(registry: &Registry) -> Self {
        StoreMetrics {
            journal_appends: registry.counter("store.journal.appends"),
            journal_flushes: registry.counter("store.journal.flushes"),
            fsync_ns: registry.histogram("store.journal.fsync.ns"),
            snapshot_saves: registry.counter("store.snapshot.saves"),
            snapshot_save_ns: registry.histogram("store.snapshot.save.ns"),
            compactions: registry.counter("store.journal.compactions"),
            loads: registry.counter("store.loads"),
            replayed: registry.counter("store.replay.replayed"),
            skipped: registry.counter("store.replay.skipped"),
            discarded_tails: registry.counter("store.replay.discarded_tails"),
        }
    }
}

/// Durable home of one index: a snapshot file plus its write-ahead journal
/// (`<snapshot>.journal`), with an optional [`FaultPlan`] driving
/// deterministic crash tests.
pub struct IndexStore {
    snapshot_path: PathBuf,
    journal_path: PathBuf,
    side_path: PathBuf,
    /// `true` while an online compaction is in flight: appends land in the
    /// side journal instead of the main one.
    side_mode: bool,
    flush_every: usize,
    buffer: Vec<u8>,
    buffered: usize,
    plan: FaultPlan,
    crashed: bool,
    retry: RetryPolicy,
    metrics: Option<StoreMetrics>,
}

impl IndexStore {
    /// A store over `snapshot_path`; the journal lives alongside it.
    pub fn open(snapshot_path: impl Into<PathBuf>) -> Self {
        let snapshot_path = snapshot_path.into();
        let journal_path = journal_path_for(&snapshot_path);
        let side_path = side_journal_path_for(&snapshot_path);
        IndexStore {
            snapshot_path,
            journal_path,
            side_path,
            side_mode: false,
            flush_every: 1,
            buffer: Vec::new(),
            buffered: 0,
            plan: FaultPlan::none(),
            crashed: false,
            retry: RetryPolicy::default(),
            metrics: None,
        }
    }

    /// Points the store's instrumentation (journal appends, fsync latency,
    /// snapshot writes, replay counters) at `registry`. Attaching a store
    /// to a [`crate::QueryEngine`] does this automatically with the
    /// engine's registry.
    pub fn set_metrics(&mut self, registry: &Arc<Registry>) {
        self.metrics = Some(StoreMetrics::new(registry));
    }

    /// Batches journal appends: fsync once every `n` records instead of
    /// per record. Records in a partial batch report
    /// [`Durability::Buffered`] and are *not* crash-durable until
    /// [`IndexStore::sync`].
    pub fn with_flush_every(mut self, n: usize) -> Self {
        self.flush_every = n.max(1);
        self
    }

    /// Arms a [`FaultPlan`] (tests only; the default plan never fires).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Overrides the retry policy snapshot writes and journal flushes use
    /// for transient I/O errors (default: [`RetryPolicy::default`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Path of the journal file.
    pub fn journal_path(&self) -> &Path {
        &self.journal_path
    }

    /// Path of the side journal used while an online compaction runs.
    pub fn side_journal_path(&self) -> &Path {
        &self.side_path
    }

    /// `true` while an online compaction is in flight (appends are landing
    /// in the side journal).
    pub fn compacting(&self) -> bool {
        self.side_mode
    }

    /// Overrides the journal batch size in place (the owning shard uses
    /// this when streaming ingest switches to buffered durability).
    pub fn set_flush_every(&mut self, n: usize) {
        self.flush_every = n.max(1);
    }

    /// Number of records currently buffered (not yet crash-durable).
    pub fn buffered_records(&self) -> usize {
        self.buffered
    }

    fn check_alive(&self) -> Result<(), ServeError> {
        if self.crashed {
            return Err(ServeError::Invalid(
                "store hit an injected crash; open a fresh store to recover".into(),
            ));
        }
        Ok(())
    }

    /// Atomically persists `index` and compacts the journal.
    ///
    /// # Errors
    /// IO failures, serialisation failures, or an armed fault firing.
    pub fn save_snapshot(&mut self, index: &AnnIndex) -> Result<(), ServeError> {
        self.check_alive()?;
        let t0 = Instant::now();
        let bytes = encode_snapshot(index)?;
        if let Some(survives) = self.plan.torn_write_survives(bytes.len()) {
            // a real torn write: only a prefix of the temp file reaches
            // disk and the rename never happens
            let tmp = tmp_path(&self.snapshot_path);
            std::fs::write(&tmp, &bytes[..survives]).map_err(|e| ServeError::io(&tmp, e))?;
            self.crashed = true;
            return Err(ServeError::InjectedCrash(CrashPoint::SnapshotTempWrite.name()));
        }
        write_atomic_retry(&self.snapshot_path, &bytes, &self.retry)
            .map_err(|e| ServeError::io(&self.snapshot_path, e))?;
        if self.plan.crash_before_journal_truncate {
            self.crashed = true;
            return Err(ServeError::InjectedCrash(CrashPoint::BeforeJournalTruncate.name()));
        }
        // the snapshot now contains everything: compact the journal (and
        // any side journal a crashed online compaction left behind)
        self.buffer.clear();
        self.buffered = 0;
        self.side_mode = false;
        let mut compacted = false;
        for path in [&self.journal_path, &self.side_path] {
            if path.exists() {
                compacted = true;
                std::fs::remove_file(path).map_err(|e| ServeError::io(path, e))?;
                fsync_parent_dir(path);
            }
        }
        if let Some(m) = &self.metrics {
            m.snapshot_saves.inc();
            m.snapshot_save_ns.record(t0.elapsed().as_nanos() as u64);
            if compacted {
                m.compactions.inc();
            }
        }
        Ok(())
    }

    /// Enters side-journal mode: the batch buffer is flushed to the main
    /// journal, and every subsequent append lands in the side journal
    /// while the caller compacts a point-in-time clone off-lock. Nothing
    /// on disk is modified beyond the flush, so a crash here costs
    /// nothing — recovery sees the old snapshot plus the main journal.
    ///
    /// # Errors
    /// [`ServeError::Invalid`] when an online compaction is already in
    /// flight; IO failures; an armed fault firing.
    pub fn begin_online_compaction(&mut self) -> Result<(), ServeError> {
        self.check_alive()?;
        if self.side_mode {
            return Err(ServeError::Invalid("online compaction already in progress".into()));
        }
        self.flush_buffer()?;
        self.side_mode = true;
        if self.plan.crash_on_side_install {
            self.crashed = true;
            return Err(ServeError::InjectedCrash(CrashPoint::SideJournalInstall.name()));
        }
        Ok(())
    }

    /// Flushes and reads back every record the side journal accumulated
    /// while the compaction ran, as `(seq, raw_vector)` pairs for the
    /// caller to replay into its clone before the commit.
    ///
    /// # Errors
    /// [`ServeError::Invalid`] when no online compaction is in flight; IO
    /// or parse failures (the process is alive, so unlike recovery a torn
    /// or corrupt side record is an error, never tolerated).
    pub fn side_records(&mut self) -> Result<Vec<(usize, Vec<f32>)>, ServeError> {
        self.check_alive()?;
        if !self.side_mode {
            return Err(ServeError::Invalid("no online compaction in progress".into()));
        }
        self.flush_buffer()?;
        let journal = match std::fs::read(&self.side_path) {
            Ok(j) => j,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(ServeError::io(&self.side_path, e)),
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < journal.len() {
            let Some((payload, next)) = frame_at(&journal, pos) else {
                return Err(ServeError::JournalReplay {
                    record: records.len(),
                    detail: "partial side-journal frame while the store is live".into(),
                });
            };
            if crc32(payload) != read_u32(&journal, pos + 4) {
                return Err(ServeError::JournalReplay {
                    record: records.len(),
                    detail: "side-journal checksum mismatch while the store is live".into(),
                });
            }
            let rec: JournalRecord = std::str::from_utf8(payload)
                .ok()
                .and_then(|t| serde_json::from_str(t).ok())
                .ok_or_else(|| ServeError::JournalReplay {
                    record: records.len(),
                    detail: "bad side-journal payload".into(),
                })?;
            records.push((rec.seq as usize, rec.vector));
            pos = next;
        }
        Ok(records)
    }

    /// Commits an online compaction: atomically renames the pre-encoded
    /// snapshot (which must already contain every side record — see
    /// [`IndexStore::side_records`]) over the live one, then deletes the
    /// main journal and the side journal, in that order. Each step has a
    /// crash point; all are recoverable because replay skips records the
    /// snapshot already holds.
    ///
    /// The caller holds whatever lock blocks new appends for the duration
    /// of this call — it is the only "pause" the protocol takes, and it
    /// does no encoding work.
    ///
    /// # Errors
    /// [`ServeError::Invalid`] when no online compaction is in flight; IO
    /// failures; an armed fault firing.
    pub fn commit_online_compaction(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        self.check_alive()?;
        if !self.side_mode {
            return Err(ServeError::Invalid("no online compaction in progress".into()));
        }
        if self.buffered > 0 {
            // the caller must read side_records() and block appends until
            // the commit lands — a buffered record here would be absent
            // from the snapshot it is about to delete the journals of
            return Err(ServeError::Invalid(
                "records appended between side_records() and commit".into(),
            ));
        }
        let t0 = Instant::now();
        if let Some(survives) = self.plan.torn_write_survives(bytes.len()) {
            let tmp = tmp_path(&self.snapshot_path);
            std::fs::write(&tmp, &bytes[..survives]).map_err(|e| ServeError::io(&tmp, e))?;
            self.crashed = true;
            return Err(ServeError::InjectedCrash(CrashPoint::SnapshotTempWrite.name()));
        }
        write_atomic_retry(&self.snapshot_path, bytes, &self.retry)
            .map_err(|e| ServeError::io(&self.snapshot_path, e))?;
        if self.plan.crash_before_journal_truncate {
            self.crashed = true;
            return Err(ServeError::InjectedCrash(CrashPoint::BeforeJournalTruncate.name()));
        }
        if self.journal_path.exists() {
            std::fs::remove_file(&self.journal_path)
                .map_err(|e| ServeError::io(&self.journal_path, e))?;
            fsync_parent_dir(&self.journal_path);
        }
        if self.plan.crash_before_side_truncate {
            self.crashed = true;
            return Err(ServeError::InjectedCrash(CrashPoint::BeforeSideJournalTruncate.name()));
        }
        if self.side_path.exists() {
            std::fs::remove_file(&self.side_path)
                .map_err(|e| ServeError::io(&self.side_path, e))?;
            fsync_parent_dir(&self.side_path);
        }
        self.side_mode = false;
        self.buffer.clear();
        self.buffered = 0;
        if let Some(m) = &self.metrics {
            m.snapshot_saves.inc();
            m.snapshot_save_ns.record(t0.elapsed().as_nanos() as u64);
            m.compactions.inc();
        }
        Ok(())
    }

    /// Appends one ingest record (`seq` = the id the index assigned,
    /// `vector` = the raw pre-normalisation vector). Returns whether the
    /// record is already crash-durable.
    ///
    /// # Errors
    /// IO failures or an armed fault firing — in both cases the record is
    /// **not** acknowledged.
    pub fn append_journal(&mut self, seq: usize, vector: &[f32]) -> Result<Durability, ServeError> {
        self.check_alive()?;
        let payload =
            serde_json::to_string(&JournalRecord { seq: seq as u64, vector: vector.to_vec() })
                .map_err(|e| ServeError::Invalid(format!("journal record serialisation: {e}")))?
                .into_bytes();
        self.buffer.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buffer.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buffer.extend_from_slice(&payload);
        self.buffered += 1;
        if let Some(m) = &self.metrics {
            m.journal_appends.inc();
        }
        if self.buffered < self.flush_every {
            if let Err(e) = self.plan.on_buffered(self.buffered) {
                // crash with the buffer unflushed: the buffered records
                // are gone, exactly like a lost page cache
                self.buffer.clear();
                self.buffered = 0;
                self.crashed = true;
                return Err(e);
            }
            return Ok(Durability::Buffered);
        }
        self.flush_buffer()?;
        if let Err(e) = self.plan.on_append() {
            self.crashed = true;
            return Err(e);
        }
        Ok(Durability::Synced)
    }

    /// Forces any buffered journal records to disk.
    ///
    /// # Errors
    /// IO failures; afterwards every previously buffered record is synced.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.check_alive()?;
        self.flush_buffer()
    }

    fn flush_buffer(&mut self) -> Result<(), ServeError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let path = if self.side_mode { &self.side_path } else { &self.journal_path };
        let plan = &self.plan;
        let buffer = &self.buffer;
        // Journal length before this flush. A failed attempt may have
        // appended a partial frame; each retry truncates back to this
        // length first, so retries can never leave garbage mid-journal
        // (and a re-appended full batch stays replay-idempotent).
        let start_len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let fsync_ns = retry(&self.retry, ServeError::is_retryable_io, |_attempt| {
            plan.on_flush_attempt().map_err(|e| ServeError::io(path, e))?;
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| ServeError::io(path, e))?;
            let len = f.metadata().map_err(|e| ServeError::io(path, e))?.len();
            if len > start_len {
                f.set_len(start_len).map_err(|e| ServeError::io(path, e))?;
            }
            f.write_all(buffer).map_err(|e| ServeError::io(path, e))?;
            let t0 = Instant::now();
            f.sync_all().map_err(|e| ServeError::io(path, e))?;
            Ok(t0.elapsed().as_nanos() as u64)
        })?;
        if let Some(m) = &self.metrics {
            m.journal_flushes.inc();
            m.fsync_ns.record(fsync_ns);
        }
        self.buffer.clear();
        self.buffered = 0;
        Ok(())
    }

    /// Recovers the index to the last durable state: snapshot, then main
    /// journal replay, then side journal replay (in the order records
    /// were written — the side journal only ever holds records appended
    /// *after* everything in the main journal). A torn tail record is
    /// discarded (it was never acknowledged); corruption anywhere else is
    /// an error.
    ///
    /// # Errors
    /// Missing/corrupt snapshot or a journal that cannot be replayed.
    pub fn load(&self) -> Result<Recovery, ServeError> {
        let bytes = std::fs::read(&self.snapshot_path)
            .map_err(|e| ServeError::io(&self.snapshot_path, e))?;
        let mut index = decode_snapshot(&bytes, &self.snapshot_path)?;
        let (mut replayed, mut skipped, mut discarded_tail) = (0usize, 0usize, false);
        for path in [&self.journal_path, &self.side_path] {
            let journal = match std::fs::read(path) {
                Ok(j) => j,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(ServeError::io(path, e)),
            };
            let mut pos = 0usize;
            let mut record_no = 0usize;
            while pos < journal.len() {
                let Some((payload, next)) = frame_at(&journal, pos) else {
                    // partial frame at EOF: torn tail, never acknowledged
                    discarded_tail = true;
                    break;
                };
                let stored_crc = read_u32(&journal, pos + 4);
                if crc32(payload) != stored_crc {
                    if next == journal.len() {
                        // final record, bad checksum: a torn write of the
                        // last (unacknowledged) record
                        discarded_tail = true;
                        break;
                    }
                    // corruption with acknowledged records after it —
                    // losing them silently would break the durability
                    // contract
                    return Err(ServeError::JournalReplay {
                        record: record_no,
                        detail: "checksum mismatch before end of journal".into(),
                    });
                }
                let text = std::str::from_utf8(payload).map_err(|_| ServeError::JournalReplay {
                    record: record_no,
                    detail: "payload is not UTF-8".into(),
                })?;
                let rec: JournalRecord =
                    serde_json::from_str(text).map_err(|e| ServeError::JournalReplay {
                        record: record_no,
                        detail: format!("bad payload: {e}"),
                    })?;
                let n = index.len() as u64;
                if rec.seq < n {
                    skipped += 1; // already compacted into the snapshot
                } else if rec.seq == n {
                    index.try_insert(rec.vector).map_err(|e| ServeError::JournalReplay {
                        record: record_no,
                        detail: e.to_string(),
                    })?;
                    replayed += 1;
                } else {
                    return Err(ServeError::JournalReplay {
                        record: record_no,
                        detail: format!("sequence gap: record {} onto {} vectors", rec.seq, n),
                    });
                }
                pos = next;
                record_no += 1;
            }
        }
        self.record_load(replayed, skipped, discarded_tail);
        Ok(Recovery { index, replayed, skipped, discarded_tail })
    }

    /// Counts one completed [`IndexStore::load`] and what its replay saw.
    fn record_load(&self, replayed: usize, skipped: usize, discarded_tail: bool) {
        if let Some(m) = &self.metrics {
            m.loads.inc();
            m.replayed.add(replayed as u64);
            m.skipped.add(skipped as u64);
            if discarded_tail {
                m.discarded_tails.inc();
            }
        }
    }

    /// Integrity check without mutating anything: header + checksum of the
    /// snapshot, frame scan of the main and side journals, and the journal
    /// tail length (records not yet folded into a snapshot).
    pub fn verify(&self) -> VerifyReport {
        let snapshot = self.verify_snapshot();
        let journal = self.verify_journal_at(&self.journal_path);
        let side_journal = self.verify_journal_at(&self.side_path);
        let tail_records = if snapshot.error.is_none() && snapshot.format != "missing" {
            count_tail_records(&self.journal_path, snapshot.count)
                + count_tail_records(&self.side_path, snapshot.count)
        } else {
            0
        };
        let ok = snapshot.error.is_none()
            && snapshot.format != "missing"
            && journal.error.is_none()
            && side_journal.error.is_none();
        VerifyReport { snapshot, journal, side_journal, tail_records, ok }
    }

    fn verify_snapshot(&self) -> SnapshotReport {
        let path = self.snapshot_path.display().to_string();
        let mut r = SnapshotReport {
            path,
            format: "corrupt".into(),
            version: 0,
            dim: 0,
            nlist: 0,
            count: 0,
            header_ok: false,
            payload_ok: false,
            bytes: 0,
            facets: Vec::new(),
            quant: Vec::new(),
            error: None,
        };
        let bytes = match std::fs::read(&self.snapshot_path) {
            Ok(b) => b,
            Err(e) => {
                r.format = "missing".into();
                r.error = Some(e.to_string());
                return r;
            }
        };
        r.bytes = bytes.len() as u64;
        if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
            // pre-v1 snapshots were bare JSON
            match AnnIndex::from_json(std::str::from_utf8(&bytes).unwrap_or("")) {
                Ok(idx) => {
                    r.format = "legacy-json".into();
                    r.dim = idx.dim();
                    r.nlist = idx.nlist();
                    r.count = idx.len() as u64;
                    r.header_ok = true;
                    r.payload_ok = true;
                    r.facets = idx.facet_checksums();
                    r.quant = idx.quant_checksums();
                }
                Err(e) => r.error = Some(format!("not a v1 snapshot and not legacy JSON: {e}")),
            }
            return r;
        }
        if crc32(&bytes[..HEADER_LEN - 4]) != read_u32(&bytes, HEADER_LEN - 4) {
            r.error = Some("header checksum mismatch".into());
            return r;
        }
        r.header_ok = true;
        r.version = read_u32(&bytes, 8);
        r.dim = read_u32(&bytes, 12) as usize;
        r.nlist = read_u32(&bytes, 16) as usize;
        r.count = read_u64(&bytes, 20);
        if r.version == 0 || r.version > FORMAT_VERSION {
            r.error = Some(format!("unsupported format version {}", r.version));
            return r;
        }
        let payload_len = read_u64(&bytes, 28) as usize;
        if bytes.len() != HEADER_LEN + payload_len {
            r.error = Some(format!(
                "payload length mismatch: header says {payload_len}, file holds {}",
                bytes.len() - HEADER_LEN
            ));
            return r;
        }
        if crc32(&bytes[HEADER_LEN..]) != read_u32(&bytes, 36) {
            r.error = Some("payload checksum mismatch".into());
            return r;
        }
        r.payload_ok = true;
        r.format = format!("v{}", r.version);
        // decode the payload to report per-facet segment checksums; a
        // payload the checksums accepted but the parser rejects is still
        // an integrity failure worth surfacing
        match std::str::from_utf8(&bytes[HEADER_LEN..])
            .ok()
            .and_then(|t| AnnIndex::from_json(t).ok())
        {
            Some(idx) => {
                r.facets = idx.facet_checksums();
                r.quant = idx.quant_checksums();
            }
            None => r.error = Some("payload checksums pass but JSON is rejected".into()),
        }
        r
    }

    fn verify_journal_at(&self, journal_path: &Path) -> JournalReport {
        let path = journal_path.display().to_string();
        let mut r = JournalReport {
            path,
            present: false,
            valid_records: 0,
            bytes: 0,
            torn_tail: false,
            error: None,
        };
        let journal = match std::fs::read(journal_path) {
            Ok(j) => j,
            Err(_) => return r,
        };
        r.present = true;
        r.bytes = journal.len() as u64;
        let mut pos = 0usize;
        while pos < journal.len() {
            let Some((payload, next)) = frame_at(&journal, pos) else {
                r.torn_tail = true;
                break;
            };
            if crc32(payload) != read_u32(&journal, pos + 4) {
                if next == journal.len() {
                    r.torn_tail = true;
                } else {
                    r.error = Some(format!(
                        "record {} checksum mismatch before end of journal",
                        r.valid_records
                    ));
                }
                break;
            }
            r.valid_records += 1;
            pos = next;
        }
        r
    }
}

/// `<snapshot>.journal`, preserving the original extension as part of the
/// file name (`index.json` → `index.json.journal`).
pub fn journal_path_for(snapshot: &Path) -> PathBuf {
    let mut name = snapshot.as_os_str().to_os_string();
    name.push(".journal");
    PathBuf::from(name)
}

/// `<snapshot>.journal.side` — where appends land while an online
/// compaction is in flight.
pub fn side_journal_path_for(snapshot: &Path) -> PathBuf {
    let mut name = snapshot.as_os_str().to_os_string();
    name.push(".journal.side");
    PathBuf::from(name)
}

/// Counts checksum-valid records in `path` whose `seq` is at or past
/// `snapshot_count` — the journal tail a compaction would fold in.
/// Unreadable frames and records stop the count (verification reports
/// them separately); a missing file counts zero.
fn count_tail_records(path: &Path, snapshot_count: u64) -> usize {
    let Ok(journal) = std::fs::read(path) else { return 0 };
    let mut tail = 0usize;
    let mut pos = 0usize;
    while pos < journal.len() {
        let Some((payload, next)) = frame_at(&journal, pos) else { break };
        if crc32(payload) != read_u32(&journal, pos + 4) {
            break;
        }
        let Some(rec) = std::str::from_utf8(payload)
            .ok()
            .and_then(|t| serde_json::from_str::<JournalRecord>(t).ok())
        else {
            break;
        };
        if rec.seq >= snapshot_count {
            tail += 1;
        }
        pos = next;
    }
    tail
}

/// Returns `(payload, next_offset)` for the frame at `pos`, or `None` when
/// the remaining bytes cannot hold a complete frame.
fn frame_at(journal: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    if journal.len() - pos < 8 {
        return None;
    }
    let len = read_u32(journal, pos) as usize;
    let next = pos.checked_add(8)?.checked_add(len)?;
    if next > journal.len() {
        return None;
    }
    Some((&journal[pos + 8..next], next))
}

/// Encodes `index` as a headered v3 snapshot byte blob. `pub(crate)` so
/// the shard's online compaction can do the expensive encode off-lock and
/// hand the finished bytes to [`IndexStore::commit_online_compaction`].
pub(crate) fn encode_snapshot(index: &AnnIndex) -> Result<Vec<u8>, ServeError> {
    let payload = index.to_json_bytes()?;
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(index.dim() as u32).to_le_bytes());
    bytes.extend_from_slice(&(index.nlist() as u32).to_le_bytes());
    bytes.extend_from_slice(&(index.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    let header_crc = crc32(&bytes);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    bytes.extend_from_slice(&payload);
    Ok(bytes)
}

fn decode_snapshot(bytes: &[u8], path: &Path) -> Result<AnnIndex, ServeError> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        // fall back to the pre-v1 bare-JSON format
        let text = std::str::from_utf8(bytes)
            .map_err(|_| ServeError::corrupt(path, "neither a v1 snapshot nor UTF-8 JSON"))?;
        return AnnIndex::from_json(text)
            .map_err(|e| ServeError::corrupt(path, format!("legacy JSON rejected: {e}")));
    }
    if crc32(&bytes[..HEADER_LEN - 4]) != read_u32(bytes, HEADER_LEN - 4) {
        return Err(ServeError::corrupt(path, "header checksum mismatch"));
    }
    // v1 payloads decode through the same path: the facet layout they
    // lack deserialises as "no layout", i.e. the fused single-segment
    // view — that *is* the migration. The next save rewrites as v2.
    let version = read_u32(bytes, 8);
    if version == 0 || version > FORMAT_VERSION {
        return Err(ServeError::corrupt(path, format!("unsupported format version {version}")));
    }
    let payload_len = read_u64(bytes, 28) as usize;
    if bytes.len() != HEADER_LEN + payload_len {
        return Err(ServeError::corrupt(
            path,
            format!(
                "payload length mismatch: header says {payload_len}, file holds {}",
                bytes.len() - HEADER_LEN
            ),
        ));
    }
    let payload = &bytes[HEADER_LEN..];
    if crc32(payload) != read_u32(bytes, 36) {
        return Err(ServeError::corrupt(path, "payload checksum mismatch"));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| ServeError::corrupt(path, "payload is not UTF-8"))?;
    let index = AnnIndex::from_json(text)
        .map_err(|e| ServeError::corrupt(path, format!("payload rejected: {e}")))?;
    let (dim, nlist, count) =
        (read_u32(bytes, 12) as usize, read_u32(bytes, 16) as usize, read_u64(bytes, 20));
    if index.dim() != dim || index.nlist() != nlist || index.len() as u64 != count {
        return Err(ServeError::corrupt(
            path,
            format!(
                "header/payload disagreement: header ({dim}, {nlist}, {count}) vs payload ({}, {}, {})",
                index.dim(),
                index.nlist(),
                index.len()
            ),
        ));
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sem-store-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard test vector for CRC-32/IEEE
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_roundtrip_and_verify() {
        let dir = tmp_dir("roundtrip");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(300, 8, 1), IndexConfig::default());
        let mut store = IndexStore::open(&snap);
        store.save_snapshot(&idx).unwrap();
        let rec = store.load().unwrap();
        assert_eq!(rec.replayed, 0);
        assert!(!rec.discarded_tail);
        let q = random_vectors(1, 8, 2).pop().unwrap();
        assert_eq!(rec.index.search(&q, 5), idx.search(&q, 5));
        let report = store.verify();
        assert!(report.ok, "{report:?}");
        assert_eq!(report.snapshot.format, "v3");
        assert_eq!(report.snapshot.version, 3);
        assert_eq!(report.snapshot.count, 300);
        // an un-faceted index reports the single fused segment checksum
        assert_eq!(report.snapshot.facets.len(), 1);
        assert_eq!(report.snapshot.facets[0].name, "fused");
        assert_eq!(report.snapshot.facets[0].dim, 8);
        // unquantized stores carry no code checksums
        assert!(report.snapshot.quant.is_empty());
        assert!(!report.journal.present);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_snapshot_survives_roundtrip_and_verify_reports_codes() {
        let dir = tmp_dir("quantized");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(200, 9, 60), IndexConfig::default())
            .with_layout(crate::facet::FacetLayout::sem(3))
            .unwrap()
            .with_sq8()
            .unwrap();
        let mut store = IndexStore::open(&snap);
        store.save_snapshot(&idx).unwrap();
        let rec = store.load().unwrap();
        assert!(rec.index.is_quantized());
        let q = random_vectors(1, 9, 61).pop().unwrap();
        assert_eq!(rec.index.search(&q, 5), idx.search(&q, 5));
        let report = store.verify();
        assert!(report.ok, "{report:?}");
        let names: Vec<&str> = report.snapshot.quant.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["bg", "method", "result"]);
        assert_eq!(report.snapshot.quant, idx.quant_checksums());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faceted_layout_survives_snapshot_and_verify_reports_segments() {
        let dir = tmp_dir("faceted");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(120, 9, 40), IndexConfig::default())
            .with_layout(crate::facet::FacetLayout::sem(3))
            .unwrap();
        let mut store = IndexStore::open(&snap);
        store.save_snapshot(&idx).unwrap();
        let rec = store.load().unwrap();
        assert!(rec.index.has_facets());
        assert_eq!(rec.index.layout(), idx.layout());
        let report = store.verify();
        assert!(report.ok, "{report:?}");
        let names: Vec<&str> = report.snapshot.facets.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["bg", "method", "result"]);
        assert_eq!(report.snapshot.facets, idx.facet_checksums());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_restores_every_synced_append() {
        let dir = tmp_dir("replay");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(50, 6, 3), IndexConfig::default());
        let mut store = IndexStore::open(&snap);
        store.save_snapshot(&idx).unwrap();
        let extra = random_vectors(7, 6, 4);
        let mut reference = idx.clone();
        for v in &extra {
            let seq = reference.len();
            assert_eq!(store.append_journal(seq, v).unwrap(), Durability::Synced);
            reference.try_insert(v.clone()).unwrap();
        }
        // "crash": drop the store, recover from disk
        drop(store);
        let rec = IndexStore::open(&snap).load().unwrap();
        assert_eq!(rec.replayed, 7);
        assert_eq!(rec.index.len(), 57);
        let q = random_vectors(1, 6, 5).pop().unwrap();
        assert_eq!(rec.index.search(&q, 10), reference.search(&q, 10));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_appends_are_buffered_until_sync() {
        let dir = tmp_dir("batch");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(40, 4, 6), IndexConfig::default());
        let mut store = IndexStore::open(&snap).with_flush_every(3);
        store.save_snapshot(&idx).unwrap();
        let vs = random_vectors(4, 4, 7);
        assert_eq!(store.append_journal(40, &vs[0]).unwrap(), Durability::Buffered);
        assert_eq!(store.append_journal(41, &vs[1]).unwrap(), Durability::Buffered);
        assert_eq!(store.append_journal(42, &vs[2]).unwrap(), Durability::Synced);
        assert_eq!(store.append_journal(43, &vs[3]).unwrap(), Durability::Buffered);
        assert_eq!(store.buffered_records(), 1);
        // a crash here may lose the buffered record 43 — it was never
        // acknowledged as durable
        let rec = IndexStore::open(&snap).load().unwrap();
        assert_eq!(rec.index.len(), 43);
        // sync makes it durable
        store.sync().unwrap();
        let rec = IndexStore::open(&snap).load().unwrap();
        assert_eq!(rec.index.len(), 44);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_flush_failures_are_absorbed_by_retry() {
        let dir = tmp_dir("transient-flush");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(30, 4, 10), IndexConfig::default());
        let policy = RetryPolicy { base_delay_ms: 0, ..RetryPolicy::with_attempts(3) };
        let mut store = IndexStore::open(&snap)
            .with_fault_plan(FaultPlan::transient_flush(2))
            .with_retry(policy);
        store.save_snapshot(&idx).unwrap();
        // Two injected transient failures fit inside the three-attempt
        // budget: the append still acknowledges durable.
        let v = random_vectors(1, 4, 11).pop().unwrap();
        assert_eq!(store.append_journal(30, &v).unwrap(), Durability::Synced);
        let rec = IndexStore::open(&snap).load().unwrap();
        assert_eq!(rec.replayed, 1);
        assert_eq!(rec.index.len(), 31);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_flush_retries_fail_without_poisoning_the_store() {
        let dir = tmp_dir("flush-exhausted");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(30, 4, 12), IndexConfig::default());
        let policy = RetryPolicy { base_delay_ms: 0, ..RetryPolicy::with_attempts(2) };
        let mut store = IndexStore::open(&snap)
            .with_fault_plan(FaultPlan::transient_flush(3))
            .with_retry(policy);
        store.save_snapshot(&idx).unwrap();
        let v = random_vectors(1, 4, 13).pop().unwrap();
        let err = store.append_journal(30, &v).unwrap_err();
        assert!(!err.is_injected(), "transient exhaustion is an Io error, not a crash");
        assert!(err.is_retryable_io());
        // Unlike a crash fault, a transient failure does not poison the
        // store: the record is still buffered and the next sync (third
        // injected failure consumed, budget refreshed) lands it.
        store.sync().unwrap();
        let rec = IndexStore::open(&snap).load().unwrap();
        assert_eq!(rec.index.len(), 31);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_snapshot_compacts_the_journal() {
        let dir = tmp_dir("compact");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(30, 4, 8), IndexConfig::default());
        let mut store = IndexStore::open(&snap);
        store.save_snapshot(&idx).unwrap();
        let v = random_vectors(1, 4, 9).pop().unwrap();
        store.append_journal(30, &v).unwrap();
        assert!(store.journal_path().exists());
        let rec = store.load().unwrap();
        store.save_snapshot(&rec.index).unwrap();
        assert!(!store.journal_path().exists());
        let rec2 = store.load().unwrap();
        assert_eq!(rec2.index.len(), 31);
        assert_eq!(rec2.replayed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_bare_json_snapshots_still_load() {
        let dir = tmp_dir("legacy");
        let snap = dir.join("index.json");
        let idx = AnnIndex::build(random_vectors(20, 4, 10), IndexConfig::default());
        std::fs::write(&snap, idx.to_json().unwrap()).unwrap();
        let store = IndexStore::open(&snap);
        let rec = store.load().unwrap();
        assert_eq!(rec.index.len(), 20);
        let report = store.verify();
        assert!(report.ok);
        assert_eq!(report.snapshot.format, "legacy-json");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Drives one full online compaction: 3 records already in the main
    /// journal, 4 more appended into the side journal while the compaction
    /// "runs". Returns the in-memory reference index over every
    /// *acknowledged* operation, plus the injected crash when `plan` fired
    /// — the recovery contract is stated over acknowledged records only.
    fn online_compaction_roundtrip(dir: &Path, plan: FaultPlan) -> (AnnIndex, Option<ServeError>) {
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(60, 6, 70), IndexConfig::default());
        let mut store = IndexStore::open(&snap);
        store.save_snapshot(&idx).unwrap();
        let mut live = idx;
        // records already in the main journal before compaction starts
        for v in random_vectors(3, 6, 71) {
            store.append_journal(live.len(), &v).unwrap();
            live.try_insert(v).unwrap();
        }
        drop(store);
        let mut store = IndexStore::open(&snap).with_fault_plan(plan);
        let mut clone = store.load().unwrap().index;
        if let Err(e) = store.begin_online_compaction() {
            return (live, Some(e));
        }
        // ingest continues while the encode runs: these land in the side
        // journal (acknowledged one by one)
        for v in random_vectors(4, 6, 72) {
            if let Err(e) = store.append_journal(live.len(), &v) {
                return (live, Some(e));
            }
            live.try_insert(v).unwrap();
        }
        let records = match store.side_records() {
            Ok(r) => r,
            Err(e) => return (live, Some(e)),
        };
        for (seq, v) in records {
            assert_eq!(seq, clone.len());
            clone.try_insert(v).unwrap();
        }
        let bytes = encode_snapshot(&clone).unwrap();
        if let Err(e) = store.commit_online_compaction(&bytes) {
            return (live, Some(e));
        }
        assert!(!store.compacting());
        assert!(!store.journal_path().exists());
        assert!(!store.side_journal_path().exists());
        (live, None)
    }

    #[test]
    fn online_compaction_folds_main_and_side_journals() {
        let dir = tmp_dir("online-compact");
        let (live, err) = online_compaction_roundtrip(&dir, FaultPlan::none());
        assert!(err.is_none());
        let rec = IndexStore::open(dir.join("index.bin")).load().unwrap();
        assert_eq!(rec.replayed, 0, "everything is inside the snapshot");
        assert_eq!(rec.index.len(), live.len());
        // the compacted store is byte-identical to the never-compacted
        // in-memory run
        assert_eq!(rec.index.to_json().unwrap(), live.to_json().unwrap());
        let q = random_vectors(1, 6, 73).pop().unwrap();
        assert_eq!(rec.index.search(&q, 10), live.search(&q, 10));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_at_every_online_compaction_step_recovers_identically() {
        for (name, plan) in [
            ("side-install", FaultPlan::crash_on_side_install()),
            ("torn-temp", FaultPlan::torn_snapshot(20)),
            ("before-main-truncate", FaultPlan::crash_mid_compaction()),
            ("before-side-truncate", FaultPlan::crash_before_side_truncate()),
        ] {
            let dir = tmp_dir(&format!("online-crash-{name}"));
            let (live, err) = online_compaction_roundtrip(&dir, plan);
            let err = err.expect(name);
            assert!(err.is_injected(), "{name}: {err}");
            // reboot: a fresh store over the same wreckage must recover
            // exactly the acknowledged state, byte for byte
            let rec = IndexStore::open(dir.join("index.bin")).load().unwrap();
            assert_eq!(rec.index.len(), live.len(), "{name} lost acknowledged records");
            assert_eq!(
                rec.index.to_json().unwrap(),
                live.to_json().unwrap(),
                "{name}: recovery must be byte-identical to the never-crashed reference"
            );
            // and the wreckage itself verifies as recoverable
            assert!(IndexStore::open(dir.join("index.bin")).verify().ok, "{name}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn verify_reports_journal_tail_and_side_journal() {
        let dir = tmp_dir("tail");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(40, 4, 75), IndexConfig::default());
        let mut store = IndexStore::open(&snap);
        store.save_snapshot(&idx).unwrap();
        assert_eq!(store.verify().tail_records, 0);
        let mut live = idx;
        for v in random_vectors(5, 4, 76) {
            store.append_journal(live.len(), &v).unwrap();
            live.try_insert(v).unwrap();
        }
        let report = store.verify();
        assert_eq!(report.tail_records, 5, "five entries since the last snapshot");
        assert!(!report.side_journal.present);
        // mid-compaction, side records count toward the tail too
        store.begin_online_compaction().unwrap();
        for v in random_vectors(2, 4, 77) {
            store.append_journal(live.len(), &v).unwrap();
            live.try_insert(v).unwrap();
        }
        let report = store.verify();
        assert!(report.side_journal.present);
        assert_eq!(report.side_journal.valid_records, 2);
        assert_eq!(report.tail_records, 7);
        assert!(report.ok);
        // a blocking save folds everything and clears both journals
        store.save_snapshot(&live).unwrap();
        let report = store.verify();
        assert_eq!(report.tail_records, 0);
        assert!(!report.journal.present);
        assert!(!report.side_journal.present);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn online_compaction_misuse_is_typed() {
        let dir = tmp_dir("online-misuse");
        let snap = dir.join("index.bin");
        let idx = AnnIndex::build(random_vectors(30, 4, 78), IndexConfig::default());
        let mut store = IndexStore::open(&snap);
        store.save_snapshot(&idx).unwrap();
        // commit/side_records without begin
        assert!(matches!(store.side_records(), Err(ServeError::Invalid(_))));
        assert!(matches!(store.commit_online_compaction(&[]), Err(ServeError::Invalid(_))));
        store.begin_online_compaction().unwrap();
        // double begin
        assert!(matches!(store.begin_online_compaction(), Err(ServeError::Invalid(_))));
        let mut clone = idx.clone();
        store.append_journal(30, &random_vectors(1, 4, 79)[0]).unwrap();
        for (seq, vec) in store.side_records().unwrap() {
            assert_eq!(seq, clone.len());
            clone.try_insert(vec).unwrap();
        }
        let bytes = encode_snapshot(&clone).unwrap();
        // a record still buffered between side_records() and commit is
        // refused — the snapshot about to land would not contain it
        let mut batched = IndexStore::open(dir.join("other.bin")).with_flush_every(8);
        batched.save_snapshot(&idx).unwrap();
        batched.begin_online_compaction().unwrap();
        batched.append_journal(30, &random_vectors(1, 4, 80)[0]).unwrap();
        assert!(matches!(batched.commit_online_compaction(&bytes), Err(ServeError::Invalid(_))));
        // the well-behaved store commits fine
        store.commit_online_compaction(&bytes).unwrap();
        let rec = IndexStore::open(&snap).load().unwrap();
        assert_eq!(rec.index.len(), 31);
        assert_eq!(rec.replayed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_is_a_typed_io_error() {
        let store = IndexStore::open("/nonexistent/dir/index.bin");
        match store.load() {
            Err(ServeError::Io { path, .. }) => {
                assert!(path.to_string_lossy().contains("index.bin"));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        assert!(!store.verify().ok);
    }
}
