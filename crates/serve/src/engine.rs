//! The batched query engine: request coalescing, an LRU result cache and
//! per-stage latency/throughput counters.
//!
//! Concurrent callers [`QueryEngine::enqueue`] requests; any caller's
//! [`QueryEngine::flush`] drains *everything* pending and answers it as one
//! rayon-parallel batch against the index, so bursts coalesce into few large
//! batches instead of many single searches. Results land in a completion
//! table keyed by ticket (a flusher may answer tickets other threads
//! enqueued).
//!
//! Cache invalidation on ingestion is *targeted*: an inserted vector can
//! only change a cached top-K if it scores at least as high as the entry's
//! current K-th hit, so every other entry provably stays valid and is kept.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use serde::Serialize;

use crate::cache::LruCache;
use crate::index::{AnnIndex, Hit};

/// One top-K query.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Query vector (any scale; similarity is cosine).
    pub vector: Vec<f32>,
    /// Number of results wanted.
    pub k: usize,
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { cache_capacity: 1024 }
    }
}

/// Exact f32 bit-pattern key: two queries share a cache entry only when
/// their normalised vectors and `k` are identical.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    bits: Vec<u32>,
    k: usize,
}

impl CacheKey {
    fn new(vector: &[f32], k: usize) -> Self {
        CacheKey { bits: vector.iter().map(|v| v.to_bits()).collect(), k }
    }
}

struct CacheEntry {
    /// Normalised query vector, kept for targeted invalidation.
    query: Vec<f32>,
    k: usize,
    hits: Vec<Hit>,
}

/// A rolling window of the most recent latency samples for one stage.
struct LatencyWindow {
    samples: Vec<u64>,
    next: usize,
    count: u64,
    total_ns: u64,
}

const WINDOW: usize = 4096;

impl LatencyWindow {
    fn new() -> Self {
        LatencyWindow { samples: Vec::new(), next: 0, count: 0, total_ns: 0 }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        if self.samples.len() < WINDOW {
            self.samples.push(ns);
        } else {
            self.samples[self.next] = ns;
            self.next = (self.next + 1) % WINDOW;
        }
    }

    fn summary(&self) -> LatencySummary {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        LatencySummary {
            count: self.count,
            mean_ns: self.total_ns.checked_div(self.count).unwrap_or(0),
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
        }
    }
}

/// Latency distribution of one pipeline stage (over a rolling window of the
/// most recent samples; `count`/`mean_ns` cover the whole lifetime).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LatencySummary {
    /// Lifetime number of samples.
    pub count: u64,
    /// Lifetime mean, nanoseconds.
    pub mean_ns: u64,
    /// Median over the window, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile over the window, nanoseconds.
    pub p99_ns: u64,
}

/// Point-in-time engine counters.
#[derive(Clone, Debug, Serialize)]
pub struct StatsSnapshot {
    /// Queries answered (cache hits + searches).
    pub queries: u64,
    /// Queries served from the result cache.
    pub cache_hits: u64,
    /// Queries that went to the index.
    pub cache_misses: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Largest batch coalesced so far.
    pub largest_batch: u64,
    /// Papers ingested.
    pub ingested: u64,
    /// Cache entries dropped by targeted invalidation.
    pub invalidated: u64,
    /// Entries currently cached.
    pub cache_len: u64,
    /// Per-batch index search latency.
    pub search: LatencySummary,
    /// Per-batch cache lookup latency.
    pub cache_lookup: LatencySummary,
    /// Per-paper ingestion latency (insert + invalidation).
    pub ingest: LatencySummary,
}

struct StatsInner {
    queries: u64,
    cache_hits: u64,
    cache_misses: u64,
    batches: u64,
    largest_batch: u64,
    ingested: u64,
    invalidated: u64,
    search_ns: LatencyWindow,
    cache_ns: LatencyWindow,
    ingest_ns: LatencyWindow,
}

/// The serving engine wrapping an [`AnnIndex`].
pub struct QueryEngine {
    index: RwLock<AnnIndex>,
    cache: Mutex<LruCache<CacheKey, CacheEntry>>,
    pending: Mutex<Vec<(u64, QueryRequest)>>,
    completed: Mutex<std::collections::HashMap<u64, Vec<Hit>>>,
    next_ticket: AtomicU64,
    stats: Mutex<StatsInner>,
}

/// L2-normalises a copy of `v` (zero vectors pass through).
fn normalized(v: &[f32]) -> Vec<f32> {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        v.iter().map(|x| x / norm).collect()
    } else {
        v.to_vec()
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl QueryEngine {
    /// Wraps a built index.
    pub fn new(index: AnnIndex, config: EngineConfig) -> Self {
        QueryEngine {
            index: RwLock::new(index),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            pending: Mutex::new(Vec::new()),
            completed: Mutex::new(std::collections::HashMap::new()),
            next_ticket: AtomicU64::new(0),
            stats: Mutex::new(StatsInner {
                queries: 0,
                cache_hits: 0,
                cache_misses: 0,
                batches: 0,
                largest_batch: 0,
                ingested: 0,
                invalidated: 0,
                search_ns: LatencyWindow::new(),
                cache_ns: LatencyWindow::new(),
                ingest_ns: LatencyWindow::new(),
            }),
        }
    }

    /// Queues a query; the returned ticket redeems the result after a
    /// [`QueryEngine::flush`].
    pub fn enqueue(&self, request: QueryRequest) -> u64 {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().push((ticket, request));
        ticket
    }

    /// Drains every pending query and answers the coalesced batch: cache
    /// lookups first, the misses as one rayon-parallel index search.
    /// Results are deposited in the completion table; the processed tickets
    /// are returned.
    pub fn flush(&self) -> Vec<u64> {
        let batch: Vec<(u64, QueryRequest)> = std::mem::take(&mut *self.pending.lock());
        if batch.is_empty() {
            return Vec::new();
        }
        let tickets: Vec<u64> = batch.iter().map(|&(t, _)| t).collect();

        // stage 1: cache lookups under one lock hold
        let t0 = Instant::now();
        let mut answered: Vec<(u64, Vec<Hit>)> = Vec::new();
        let mut misses: Vec<(u64, Vec<f32>, usize)> = Vec::new();
        {
            let mut cache = self.cache.lock();
            for (ticket, req) in batch {
                let q = normalized(&req.vector);
                let key = CacheKey::new(&q, req.k);
                match cache.get(&key) {
                    Some(entry) => answered.push((ticket, entry.hits.clone())),
                    None => misses.push((ticket, q, req.k)),
                }
            }
        }
        let cache_ns = t0.elapsed().as_nanos() as u64;
        let (hits_n, misses_n) = (answered.len(), misses.len());

        // stage 2: one parallel search over the misses
        let t1 = Instant::now();
        if !misses.is_empty() {
            let queries: Vec<(Vec<f32>, usize)> =
                misses.iter().map(|(_, q, k)| (q.clone(), *k)).collect();
            let results = self.index.read().search_batch(&queries);
            let mut cache = self.cache.lock();
            for ((ticket, q, k), hits) in misses.into_iter().zip(results) {
                cache.insert(CacheKey::new(&q, k), CacheEntry { query: q, k, hits: hits.clone() });
                answered.push((ticket, hits));
            }
        }
        let search_ns = t1.elapsed().as_nanos() as u64;

        self.completed.lock().extend(answered);
        let mut stats = self.stats.lock();
        stats.queries += tickets.len() as u64;
        stats.cache_hits += hits_n as u64;
        stats.cache_misses += misses_n as u64;
        stats.batches += 1;
        stats.largest_batch = stats.largest_batch.max(tickets.len() as u64);
        stats.cache_ns.record(cache_ns);
        if misses_n > 0 {
            stats.search_ns.record(search_ns);
        }
        tickets
    }

    /// Redeems a flushed ticket (once).
    pub fn take(&self, ticket: u64) -> Option<Vec<Hit>> {
        self.completed.lock().remove(&ticket)
    }

    /// Convenience: enqueue + flush + take for a single query.
    pub fn query(&self, vector: Vec<f32>, k: usize) -> Vec<Hit> {
        let ticket = self.enqueue(QueryRequest { vector, k });
        self.flush();
        loop {
            // the ticket may have been flushed by a concurrent caller whose
            // completion write is still in flight — spin on the table
            if let Some(hits) = self.take(ticket) {
                return hits;
            }
            std::thread::yield_now();
        }
    }

    /// Convenience: answers a whole batch in request order.
    pub fn query_batch(&self, requests: Vec<QueryRequest>) -> Vec<Vec<Hit>> {
        let tickets: Vec<u64> = requests.into_iter().map(|r| self.enqueue(r)).collect();
        self.flush();
        tickets
            .into_iter()
            .map(|t| loop {
                if let Some(hits) = self.take(t) {
                    break hits;
                }
                std::thread::yield_now();
            })
            .collect()
    }

    /// Inserts an embedded paper into the index without a rebuild and drops
    /// exactly the cache entries the new vector could change. Returns the
    /// assigned vector id.
    pub fn ingest_vector(&self, vector: Vec<f32>) -> usize {
        let t0 = Instant::now();
        let v = normalized(&vector);
        let id = self.index.write().insert(v.clone());
        let dropped = self.cache.lock().retain(|_, entry| {
            if entry.hits.len() < entry.k {
                // short result list: the newcomer always joins it
                return false;
            }
            let kth = entry.hits.last().map_or(f32::NEG_INFINITY, |h| h.score);
            // keep the entry only when the new vector provably cannot enter
            // its top-K
            dot(&v, &entry.query) < kth
        });
        let ns = t0.elapsed().as_nanos() as u64;
        let mut stats = self.stats.lock();
        stats.ingested += 1;
        stats.invalidated += dropped as u64;
        stats.ingest_ns.record(ns);
        id
    }

    /// Current counters and latency summaries.
    pub fn stats(&self) -> StatsSnapshot {
        let cache_len = self.cache.lock().len() as u64;
        let s = self.stats.lock();
        StatsSnapshot {
            queries: s.queries,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            batches: s.batches,
            largest_batch: s.largest_batch,
            ingested: s.ingested,
            invalidated: s.invalidated,
            cache_len,
            search: s.search_ns.summary(),
            cache_lookup: s.cache_ns.summary(),
            ingest: s.ingest_ns.summary(),
        }
    }

    /// Read access to the wrapped index.
    pub fn with_index<R>(&self, f: impl FnOnce(&AnnIndex) -> R) -> R {
        f(&self.index.read())
    }

    /// Unwraps the (possibly grown) index, e.g. to persist it.
    pub fn into_index(self) -> AnnIndex {
        self.index.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    fn engine(n: usize, seed: u64) -> QueryEngine {
        let index = AnnIndex::build(random_vectors(n, 8, seed), IndexConfig::default());
        QueryEngine::new(index, EngineConfig::default())
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let e = engine(120, 1);
        let q = random_vectors(1, 8, 2).pop().unwrap();
        let first = e.query(q.clone(), 5);
        let second = e.query(q, 5);
        assert_eq!(first, second);
        let s = e.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.batches, 2);
    }

    #[test]
    fn enqueued_requests_coalesce_into_one_batch() {
        let e = engine(200, 3);
        let tickets: Vec<u64> = random_vectors(6, 8, 4)
            .into_iter()
            .map(|v| e.enqueue(QueryRequest { vector: v, k: 3 }))
            .collect();
        let processed = e.flush();
        assert_eq!(processed.len(), 6);
        for t in tickets {
            let hits = e.take(t).expect("flushed");
            assert_eq!(hits.len(), 3);
            assert!(e.take(t).is_none(), "tickets redeem once");
        }
        let s = e.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.largest_batch, 6);
    }

    #[test]
    fn query_batch_preserves_order() {
        let e = engine(150, 5);
        let qs = random_vectors(4, 8, 6);
        let reqs: Vec<QueryRequest> =
            qs.iter().map(|q| QueryRequest { vector: q.clone(), k: 2 }).collect();
        let batch = e.query_batch(reqs);
        for (q, hits) in qs.iter().zip(&batch) {
            // compare through the engine's normalisation so scores match
            // bit for bit
            assert_eq!(*hits, e.with_index(|i| i.search(&normalized(q), 2)));
        }
    }

    #[test]
    fn ingest_appears_in_results_and_invalidates_precisely() {
        let e = engine(100, 7);
        // two cached queries pointing in (near-)opposite directions
        let q_hot = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let q_cold = vec![-1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        e.query(q_hot.clone(), 3);
        e.query(q_cold.clone(), 3);
        assert_eq!(e.stats().cache_len, 2);
        // the ingested vector aligns with q_hot, so only that entry dies
        let id = e.ingest_vector(vec![10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let s = e.stats();
        assert_eq!(s.ingested, 1);
        assert_eq!(s.invalidated, 1);
        assert_eq!(s.cache_len, 1);
        // re-query: fresh search must now rank the newcomer first
        let hits = e.query(q_hot, 3);
        assert_eq!(hits[0].id, id);
        // the untouched cold entry still serves from cache
        let before = e.stats().cache_hits;
        e.query(q_cold, 3);
        assert_eq!(e.stats().cache_hits, before + 1);
    }

    #[test]
    fn stats_latencies_populate() {
        let e = engine(300, 9);
        for q in random_vectors(10, 8, 10) {
            e.query(q, 4);
        }
        e.ingest_vector(random_vectors(1, 8, 11).pop().unwrap());
        let s = e.stats();
        assert_eq!(s.search.count, 10);
        assert!(s.search.p99_ns >= s.search.p50_ns);
        assert!(s.search.mean_ns > 0);
        assert_eq!(s.ingest.count, 1);
        assert_eq!(s.cache_lookup.count, 10);
    }

    #[test]
    fn flush_on_empty_queue_is_a_noop() {
        let e = engine(50, 12);
        assert!(e.flush().is_empty());
        assert_eq!(e.stats().batches, 0);
    }

    #[test]
    fn into_index_round_trips_growth() {
        let e = engine(60, 13);
        e.ingest_vector(random_vectors(1, 8, 14).pop().unwrap());
        let idx = e.into_index();
        assert_eq!(idx.len(), 61);
    }
}
