//! The batched query engine: request coalescing, an LRU result cache,
//! per-request deadlines with graceful degradation, stale-cache serving
//! during recovery, and per-stage latency/throughput counters.
//!
//! Concurrent callers [`QueryEngine::enqueue`] requests; any caller's
//! [`QueryEngine::flush`] drains *everything* pending and answers it as one
//! rayon-parallel batch against the index, so bursts coalesce into few large
//! batches instead of many single searches. Results land in a completion
//! table keyed by ticket (a flusher may answer tickets other threads
//! enqueued).
//!
//! **Degradation ladder.** Every response carries a `degraded` flag: (1) a
//! request inside its deadline gets the full search; (2) near budget
//! exhaustion the index shrinks its probe count / stops the scan early and
//! the partial result is flagged [`DegradeReason::Deadline`]; (3) while the
//! index is mid-recovery, cache hits are served stale
//! ([`DegradeReason::Stale`]) and misses come back empty
//! ([`DegradeReason::Unavailable`]) — the engine never blocks and never
//! panics on the query path.
//!
//! **Durability.** With an [`IndexStore`] attached, every ingest is
//! journaled (and fsynced) *before* the in-memory insert — an acknowledged
//! ingest survives a crash by construction. Cache invalidation on ingestion
//! is *targeted*: an inserted vector can only change a cached top-K if it
//! scores at least as high as the entry's current K-th hit, so every other
//! entry provably stays valid and is kept.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use sem_obs::{Counter, Gauge, Histogram, Registry};
use serde::Serialize;

use crate::cache::LruCache;
use crate::error::ServeError;
use crate::facet::RerankParams;
use crate::index::{AnnIndex, Hit};
use crate::store::{Durability, IndexStore};
use rayon::prelude::*;

/// One top-K query.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Query vector (any scale; similarity is cosine).
    pub vector: Vec<f32>,
    /// Number of results wanted.
    pub k: usize,
    /// Wall-clock budget for this request, measured from enqueue. `None`
    /// falls back to [`EngineConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// When the request actually arrived (e.g. its scheduled arrival in an
    /// open-loop load test). Deadlines are measured from here instead of
    /// from enqueue, so time spent queueing upstream counts against the
    /// budget and an already-expired request can be shed at admission.
    /// `None` means "arrived now".
    pub arrival: Option<Instant>,
    /// Stage-2 rerank parameters (facet weights + MMR λ). `None` — the
    /// canonical form of uniform weights with λ=0 — is the plain fused
    /// scan, bit-identical to the pre-facet engine.
    pub rerank: Option<RerankParams>,
}

impl QueryRequest {
    /// A request with no per-request deadline override.
    pub fn new(vector: Vec<f32>, k: usize) -> Self {
        QueryRequest { vector, k, deadline: None, arrival: None, rerank: None }
    }

    /// Sets a wall-clock budget for this request.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Backdates the request's arrival; its deadline budget is measured
    /// from this instant rather than from enqueue.
    pub fn with_arrival(mut self, arrival: Instant) -> Self {
        self.arrival = Some(arrival);
        self
    }

    /// Attaches stage-2 rerank parameters. Default parameters (uniform
    /// weights, λ=0) canonicalise to `None` so they share cache entries —
    /// and results, bit for bit — with plain queries.
    pub fn with_rerank(mut self, params: RerankParams) -> Self {
        self.rerank = params.canonical();
        self
    }
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Deadline applied to requests that don't carry their own. `None`
    /// means unbounded (no deadline checks on the search path).
    pub default_deadline: Option<Duration>,
    /// Admission control: maximum enqueued-but-unflushed requests before
    /// [`QueryEngine::enqueue`] sheds with [`ServeError::Overloaded`].
    /// `0` means unbounded (no admission control).
    pub max_pending: usize,
    /// Backoff hint carried by [`ServeError::Overloaded`] shed responses,
    /// milliseconds.
    pub retry_after_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 1024,
            default_deadline: None,
            max_pending: 0,
            retry_after_ms: 100,
        }
    }
}

/// Why a response is degraded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum DegradeReason {
    /// The deadline budget ran out: the hits are a partial (possibly
    /// empty) result from a shrunk probe count or truncated scan.
    Deadline,
    /// Served from the cache while the index is mid-recovery; the entry
    /// may predate recent ingests.
    Stale,
    /// The index is mid-recovery and the query missed the cache; no
    /// search was possible.
    Unavailable,
    /// One or more shards of a [`crate::ShardRouter`] were down: the hits
    /// are a correct merge over the shards that answered, but papers owned
    /// by the dead shards are missing.
    ShardsDown,
    /// One or more shards straggled past the hedge budget and neither the
    /// original attempt nor the hedged retry answered in time: the hits
    /// are a correct merge over the shards that did answer.
    ShardSlow,
}

/// A served result: the hits plus an honest account of their quality.
#[derive(Clone, Debug, Serialize)]
pub struct QueryResponse {
    /// Top-K hits, best first (may be partial when `degraded`).
    pub hits: Vec<Hit>,
    /// `false` = full-fidelity search within budget.
    pub degraded: bool,
    /// Set exactly when `degraded`.
    pub reason: Option<DegradeReason>,
}

impl QueryResponse {
    fn full(hits: Vec<Hit>) -> Self {
        QueryResponse { hits, degraded: false, reason: None }
    }

    fn degraded(hits: Vec<Hit>, reason: DegradeReason) -> Self {
        QueryResponse { hits, degraded: true, reason: Some(reason) }
    }
}

/// Acknowledgement of one ingest.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IngestAck {
    /// Vector id the index assigned.
    pub id: usize,
    /// `true` when the ingest is journaled and fsynced (crash-durable).
    /// `false` without an attached store, or while a journal batch is
    /// still buffered.
    pub durable: bool,
}

/// Exact f32 bit-pattern key: two queries share a cache entry only when
/// their normalised vectors, `k` and rerank fingerprint are identical.
/// Default-weight queries carry `rerank: None`, so they keep sharing
/// entries (and hit rates) with pre-facet traffic.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    bits: Vec<u32>,
    k: usize,
    rerank: Option<Vec<u32>>,
}

impl CacheKey {
    fn new(vector: &[f32], k: usize, rerank: Option<&RerankParams>) -> Self {
        CacheKey {
            bits: vector.iter().map(|v| v.to_bits()).collect(),
            k,
            rerank: rerank.map(RerankParams::fingerprint),
        }
    }
}

struct CacheEntry {
    /// Normalised query vector, kept for targeted invalidation.
    query: Vec<f32>,
    k: usize,
    hits: Vec<Hit>,
    /// Stage-2 (reranked) results cannot be invalidated by the cosine
    /// bound — their k-th score is not a fused-scan score — so ingest
    /// drops them unconditionally.
    reranked: bool,
}

/// Latency distribution of one pipeline stage, extracted from its
/// log-bucketed [`sem_obs::Histogram`]. Percentiles are lifetime
/// approximations (≤ 25% relative error from the bucket width), monotone
/// by construction.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LatencySummary {
    /// Lifetime number of samples.
    pub count: u64,
    /// Lifetime mean, nanoseconds.
    pub mean_ns: u64,
    /// Approximate median, nanoseconds.
    pub p50_ns: u64,
    /// Approximate 99th percentile, nanoseconds.
    pub p99_ns: u64,
}

impl LatencySummary {
    pub(crate) fn of(h: &Histogram) -> Self {
        LatencySummary {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.quantile(0.50),
            p99_ns: h.quantile(0.99),
        }
    }
}

/// Point-in-time engine counters.
#[derive(Clone, Debug, Serialize)]
pub struct StatsSnapshot {
    /// Queries answered (cache hits + searches).
    pub queries: u64,
    /// Queries served from the result cache.
    pub cache_hits: u64,
    /// Queries that went to the index.
    pub cache_misses: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Largest batch coalesced so far.
    pub largest_batch: u64,
    /// Papers ingested.
    pub ingested: u64,
    /// Cache entries dropped by targeted invalidation.
    pub invalidated: u64,
    /// Entries currently cached.
    pub cache_len: u64,
    /// Responses flagged `degraded`, any reason.
    pub degraded: u64,
    /// Requests shed at admission because the pending-work budget was
    /// exhausted ([`ServeError::Overloaded`]).
    pub shed_overload: u64,
    /// Requests shed because their deadline expired while queued — answered
    /// empty-degraded without touching the cache or the index.
    pub shed_expired: u64,
    /// Cache hits served stale during recovery.
    pub stale_serves: u64,
    /// Journal records acknowledged as synced.
    pub journal_synced: u64,
    /// Journal records buffered (not yet crash-durable).
    pub journal_buffered: u64,
    /// Completed recoveries (index swapped back in).
    pub recoveries: u64,
    /// Per-batch index search latency.
    pub search: LatencySummary,
    /// Per-batch cache lookup latency.
    pub cache_lookup: LatencySummary,
    /// Per-paper ingestion latency (journal + insert + invalidation).
    pub ingest: LatencySummary,
}

/// Pre-registered handles for every engine metric — the replacement for
/// the old mutex-guarded `StatsInner`: the hot path touches only lock-free
/// atomics, and the same numbers are exportable through the registry
/// (JSON / Prometheus) without a dedicated snapshot type.
struct EngineMetrics {
    registry: Arc<Registry>,
    queries: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    batches: Arc<Counter>,
    batch_size: Arc<Histogram>,
    largest_batch: Arc<Gauge>,
    ingested: Arc<Counter>,
    invalidated: Arc<Counter>,
    cache_len: Arc<Gauge>,
    degraded: Arc<Counter>,
    deadline_misses: Arc<Counter>,
    shed_overload: Arc<Counter>,
    shed_expired: Arc<Counter>,
    stale_serves: Arc<Counter>,
    unavailable: Arc<Counter>,
    journal_synced: Arc<Counter>,
    journal_buffered: Arc<Counter>,
    recoveries: Arc<Counter>,
    search_ns: Arc<Histogram>,
    cache_ns: Arc<Histogram>,
    ingest_ns: Arc<Histogram>,
}

impl EngineMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        EngineMetrics {
            queries: registry.counter("serve.queries"),
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            batches: registry.counter("serve.batches"),
            batch_size: registry.histogram("serve.batch.size"),
            largest_batch: registry.gauge("serve.batch.largest"),
            ingested: registry.counter("serve.ingested"),
            invalidated: registry.counter("serve.cache.invalidated"),
            cache_len: registry.gauge("serve.cache.len"),
            degraded: registry.counter("serve.degraded"),
            deadline_misses: registry.counter("serve.degraded.deadline"),
            shed_overload: registry.counter("serve.shed.overload"),
            shed_expired: registry.counter("serve.shed.expired"),
            stale_serves: registry.counter("serve.degraded.stale"),
            unavailable: registry.counter("serve.degraded.unavailable"),
            journal_synced: registry.counter("serve.journal.synced"),
            journal_buffered: registry.counter("serve.journal.buffered"),
            recoveries: registry.counter("serve.recoveries"),
            search_ns: registry.histogram("serve.stage.search.ns"),
            cache_ns: registry.histogram("serve.stage.cache_lookup.ns"),
            ingest_ns: registry.histogram("serve.stage.ingest.ns"),
            registry,
        }
    }
}

/// Whether the engine's index is live or being rebuilt from durable state.
// `Ready` is the steady state for the engine's whole lifetime; boxing the
// index to shrink the transient `Recovering` variant would put a pointer
// chase on every query for nothing.
#[allow(clippy::large_enum_variant)]
enum IndexState {
    Ready(AnnIndex),
    Recovering,
}

/// A pending (enqueued, not yet flushed) request. The deadline is resolved
/// to an absolute instant at enqueue time, so queueing delay counts
/// against the budget.
struct Pending {
    ticket: u64,
    vector: Vec<f32>,
    k: usize,
    deadline: Option<Instant>,
    rerank: Option<RerankParams>,
}

/// The serving engine wrapping an [`AnnIndex`].
pub struct QueryEngine {
    index: RwLock<IndexState>,
    /// Vector width, fixed at construction — lets `enqueue`/`ingest`
    /// type-check widths without touching the index lock.
    dim: usize,
    /// The index's facet layout, mirrored outside the index lock so
    /// `enqueue` can validate rerank parameters at the door. Updated on
    /// [`QueryEngine::complete_recovery`].
    layout: RwLock<crate::facet::FacetLayout>,
    config: EngineConfig,
    cache: Mutex<LruCache<CacheKey, CacheEntry>>,
    pending: Mutex<Vec<Pending>>,
    completed: Mutex<std::collections::HashMap<u64, QueryResponse>>,
    next_ticket: AtomicU64,
    store: Mutex<Option<IndexStore>>,
    metrics: EngineMetrics,
}

/// L2-normalises a copy of `v` (zero vectors pass through).
pub(crate) fn normalized(v: &[f32]) -> Vec<f32> {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        v.iter().map(|x| x / norm).collect()
    } else {
        v.to_vec()
    }
}

pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl QueryEngine {
    /// Wraps a built index, recording metrics into a private registry
    /// (readable via [`QueryEngine::metrics`]).
    pub fn new(index: AnnIndex, config: EngineConfig) -> Self {
        Self::with_metrics(index, config, Arc::new(Registry::new()))
    }

    /// Wraps a built index, recording metrics into a shared registry — use
    /// this to aggregate serving, storage and training metrics into one
    /// exportable snapshot.
    pub fn with_metrics(index: AnnIndex, config: EngineConfig, registry: Arc<Registry>) -> Self {
        QueryEngine {
            dim: index.dim(),
            layout: RwLock::new(index.layout()),
            config,
            index: RwLock::new(IndexState::Ready(index)),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            pending: Mutex::new(Vec::new()),
            completed: Mutex::new(std::collections::HashMap::new()),
            next_ticket: AtomicU64::new(0),
            store: Mutex::new(None),
            metrics: EngineMetrics::new(registry),
        }
    }

    /// The registry this engine records into. Snapshot it for a JSON /
    /// Prometheus export of every serving metric.
    pub fn metrics(&self) -> Arc<Registry> {
        self.metrics.registry.clone()
    }

    /// Attaches a durable store: every subsequent ingest is journaled
    /// before it is acknowledged, and [`QueryEngine::persist`] /
    /// [`QueryEngine::recover_from_store`] become available. The store's
    /// own metrics (journal appends, fsync time, replay counters) are
    /// redirected into this engine's registry.
    pub fn attach_store(&self, mut store: IndexStore) {
        store.set_metrics(&self.metrics.registry);
        *self.store.lock() = Some(store);
    }

    /// Vector width the engine serves.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The facet layout the engine serves (single fused segment when the
    /// index carries no facets) — what `--facets` specs are parsed
    /// against.
    pub fn layout(&self) -> crate::facet::FacetLayout {
        self.layout.read().clone()
    }

    /// Queues a query; the returned ticket redeems the result after a
    /// [`QueryEngine::flush`].
    ///
    /// Deadlines are resolved to an absolute instant here, measured from
    /// the request's [`QueryRequest::arrival`] when set (enqueue time
    /// otherwise), so upstream queueing delay counts against the budget.
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] when the vector width is wrong —
    /// caught at the door so the batch path stays infallible —
    /// [`ServeError::InvalidFacets`] when the request's rerank parameters
    /// don't fit the index's facet layout, and [`ServeError::Overloaded`]
    /// when [`EngineConfig::max_pending`] requests are already queued
    /// (admission control: shedding at the door beats unbounded queue
    /// growth).
    pub fn enqueue(&self, request: QueryRequest) -> Result<u64, ServeError> {
        if request.vector.len() != self.dim {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim,
                got: request.vector.len(),
            });
        }
        if let Some(params) = &request.rerank {
            params.validate(&self.layout.read())?;
        }
        let budget = request.deadline.or(self.config.default_deadline);
        let arrival = request.arrival.unwrap_or_else(Instant::now);
        let deadline = budget.map(|b| arrival + b);
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut pending = self.pending.lock();
        if self.config.max_pending > 0 && pending.len() >= self.config.max_pending {
            drop(pending);
            self.metrics.shed_overload.inc();
            return Err(ServeError::Overloaded { retry_after_ms: self.config.retry_after_ms });
        }
        pending.push(Pending {
            ticket,
            vector: request.vector,
            k: request.k,
            deadline,
            rerank: request.rerank,
        });
        Ok(ticket)
    }

    /// Drains every pending query and answers the coalesced batch: cache
    /// lookups first, the misses as one rayon-parallel index search.
    /// Results are deposited in the completion table; the processed tickets
    /// are returned.
    ///
    /// Never fails and never panics: degraded conditions (deadline
    /// exhaustion, mid-recovery) surface in the responses themselves.
    pub fn flush(&self) -> Vec<u64> {
        let taken: Vec<Pending> = std::mem::take(&mut *self.pending.lock());
        if taken.is_empty() {
            return Vec::new();
        }
        let tickets: Vec<u64> = taken.iter().map(|p| p.ticket).collect();

        // stage 0: shed requests whose deadline lapsed while queued —
        // answering them empty-degraded here costs nothing; a cache lookup
        // or scan would be work their caller can no longer use
        let now = Instant::now();
        let mut answered: Vec<(u64, QueryResponse)> = Vec::new();
        let mut batch: Vec<Pending> = Vec::with_capacity(taken.len());
        for p in taken {
            match p.deadline {
                Some(d) if d <= now => answered
                    .push((p.ticket, QueryResponse::degraded(Vec::new(), DegradeReason::Deadline))),
                _ => batch.push(p),
            }
        }
        self.metrics.shed_expired.add(answered.len() as u64);

        // stage 1: cache lookups under one lock hold
        let t0 = Instant::now();
        let recovering = matches!(&*self.index.read(), IndexState::Recovering);
        let shed_n = answered.len();
        let mut misses: Vec<Pending> = Vec::new();
        let mut stale = 0u64;
        {
            let mut cache = self.cache.lock();
            for mut p in batch {
                p.vector = normalized(&p.vector);
                let key = CacheKey::new(&p.vector, p.k, p.rerank.as_ref());
                match cache.get(&key) {
                    Some(entry) if recovering => {
                        stale += 1;
                        answered.push((
                            p.ticket,
                            QueryResponse::degraded(entry.hits.clone(), DegradeReason::Stale),
                        ));
                    }
                    Some(entry) => {
                        answered.push((p.ticket, QueryResponse::full(entry.hits.clone())))
                    }
                    None => misses.push(p),
                }
            }
        }
        let cache_ns = t0.elapsed().as_nanos() as u64;
        let (hits_n, misses_n) = (answered.len() - shed_n, misses.len());

        // stage 2: one parallel search over the misses
        let t1 = Instant::now();
        let mut searched = 0u64;
        if !misses.is_empty() {
            if recovering {
                // no index to search: honest empty degraded responses
                for p in misses {
                    answered.push((
                        p.ticket,
                        QueryResponse::degraded(Vec::new(), DegradeReason::Unavailable),
                    ));
                }
            } else {
                let guard = self.index.read();
                let IndexState::Ready(index) = &*guard else {
                    // recovery began between the check and this lock; the
                    // same honest degradation applies
                    drop(guard);
                    for p in misses {
                        answered.push((
                            p.ticket,
                            QueryResponse::degraded(Vec::new(), DegradeReason::Unavailable),
                        ));
                    }
                    self.finish_flush(
                        answered,
                        tickets.len(),
                        hits_n,
                        misses_n,
                        stale,
                        cache_ns,
                        0,
                        false,
                    );
                    return tickets;
                };
                let layout = index.layout();
                let responses: Vec<QueryResponse> = misses
                    .par_iter()
                    .map(|p| {
                        // stage 1: a rerank request widens the fetch to
                        // its candidate pool; widths were checked at
                        // enqueue, so the only search outcome is
                        // (hits, degraded?)
                        let fetch = p.rerank.as_ref().map_or(p.k, |r| r.candidates.max(p.k));
                        let (hits, outcome) =
                            match index.search_deadline(&p.vector, fetch, p.deadline) {
                                Ok((hits, degraded)) => (hits, Some(degraded)),
                                Err(_) => (Vec::new(), None),
                            };
                        // stage 2: rescore the candidate pool with facet
                        // weights + MMR diversity (partial pools rerank
                        // too — a degraded answer should still be the
                        // best ordering of what was scanned)
                        let hits = match &p.rerank {
                            Some(params) => {
                                let pool: Vec<(Hit, &[f32])> =
                                    hits.iter().map(|h| (*h, index.vector(h.id))).collect();
                                crate::rerank::rerank(&p.vector, &layout, params, &pool, p.k)
                            }
                            None => hits,
                        };
                        match outcome {
                            Some(false) => QueryResponse::full(hits),
                            Some(true) => QueryResponse::degraded(hits, DegradeReason::Deadline),
                            None => QueryResponse::degraded(Vec::new(), DegradeReason::Unavailable),
                        }
                    })
                    .collect();
                drop(guard);
                searched = responses.len() as u64;
                let mut cache = self.cache.lock();
                for (p, response) in misses.into_iter().zip(responses) {
                    if !response.degraded {
                        // only full-fidelity results are worth caching —
                        // a partial result would be served as if complete
                        cache.insert(
                            CacheKey::new(&p.vector, p.k, p.rerank.as_ref()),
                            CacheEntry {
                                query: p.vector,
                                k: p.k,
                                hits: response.hits.clone(),
                                reranked: p.rerank.is_some(),
                            },
                        );
                    }
                    answered.push((p.ticket, response));
                }
            }
        }
        let search_ns = t1.elapsed().as_nanos() as u64;
        self.finish_flush(
            answered,
            tickets.len(),
            hits_n,
            misses_n,
            stale,
            cache_ns,
            search_ns,
            searched > 0,
        );
        tickets
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_flush(
        &self,
        answered: Vec<(u64, QueryResponse)>,
        batch_len: usize,
        hits_n: usize,
        misses_n: usize,
        stale: u64,
        cache_ns: u64,
        search_ns: u64,
        record_search: bool,
    ) {
        let mut degraded = 0u64;
        let mut deadline_misses = 0u64;
        let mut unavailable = 0u64;
        for (_, r) in &answered {
            if r.degraded {
                degraded += 1;
            }
            match r.reason {
                Some(DegradeReason::Deadline) => deadline_misses += 1,
                Some(DegradeReason::Unavailable) => unavailable += 1,
                _ => {}
            }
        }
        self.completed.lock().extend(answered);
        let m = &self.metrics;
        m.queries.add(batch_len as u64);
        m.cache_hits.add(hits_n as u64);
        m.cache_misses.add(misses_n as u64);
        m.batches.inc();
        m.batch_size.record(batch_len as u64);
        m.largest_batch.set_max(batch_len as f64);
        m.degraded.add(degraded);
        m.deadline_misses.add(deadline_misses);
        m.unavailable.add(unavailable);
        m.stale_serves.add(stale);
        m.cache_len.set(self.cache.lock().len() as f64);
        m.cache_ns.record(cache_ns);
        if record_search {
            m.search_ns.record(search_ns);
        }
    }

    /// Redeems a flushed ticket (once).
    pub fn take(&self, ticket: u64) -> Option<QueryResponse> {
        self.completed.lock().remove(&ticket)
    }

    /// Convenience: enqueue + flush + take for a single query.
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] on a width mismatch.
    pub fn query(&self, vector: Vec<f32>, k: usize) -> Result<QueryResponse, ServeError> {
        self.query_request(QueryRequest::new(vector, k))
    }

    /// Convenience: enqueue + flush + take for a single request (with its
    /// deadline, if any).
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] on a width mismatch.
    pub fn query_request(&self, request: QueryRequest) -> Result<QueryResponse, ServeError> {
        let ticket = self.enqueue(request)?;
        self.flush();
        loop {
            // the ticket may have been flushed by a concurrent caller whose
            // completion write is still in flight — spin on the table
            if let Some(response) = self.take(ticket) {
                return Ok(response);
            }
            std::thread::yield_now();
        }
    }

    /// Convenience: answers a whole batch in request order.
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] when any request's width is wrong
    /// (nothing is enqueued in that case... the earlier valid requests of
    /// the same call are still flushed and redeemable by ticket).
    pub fn query_batch(
        &self,
        requests: Vec<QueryRequest>,
    ) -> Result<Vec<QueryResponse>, ServeError> {
        let tickets: Vec<u64> =
            requests.into_iter().map(|r| self.enqueue(r)).collect::<Result<_, _>>()?;
        self.flush();
        Ok(tickets
            .into_iter()
            .map(|t| loop {
                if let Some(response) = self.take(t) {
                    break response;
                }
                std::thread::yield_now();
            })
            .collect())
    }

    /// Inserts an embedded paper into the index without a rebuild and drops
    /// exactly the cache entries the new vector could change. With a store
    /// attached, the vector is journaled (fsync) *before* the in-memory
    /// insert — the returned ack's `durable` flag reports whether the
    /// record is already crash-safe.
    ///
    /// # Errors
    /// Width mismatch, mid-recovery state, or a journal-append failure (in
    /// which case nothing was inserted and the ingest is *not*
    /// acknowledged).
    pub fn ingest_vector(&self, vector: Vec<f32>) -> Result<IngestAck, ServeError> {
        if vector.len() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        let t0 = Instant::now();
        let v = normalized(&vector);
        let (id, durability) = {
            let mut guard = self.index.write();
            let IndexState::Ready(index) = &mut *guard else {
                return Err(ServeError::Recovering);
            };
            let id = index.len();
            // journal first: if the append fails (or an injected fault
            // fires) the in-memory index is untouched and the caller gets
            // an error, not an ack
            let durability = match &mut *self.store.lock() {
                Some(store) => Some(store.append_journal(id, &vector)?),
                None => None,
            };
            let inserted = index.try_insert(vector)?;
            debug_assert_eq!(inserted, id);
            (id, durability)
        };
        let dropped = self.cache.lock().retain(|_, entry| {
            if entry.reranked {
                // a reranked entry's k-th score is a weighted/MMR value,
                // not a fused cosine — the bound below doesn't apply, so
                // the entry cannot be proven still-valid
                return false;
            }
            if entry.hits.len() < entry.k {
                // short result list: the newcomer always joins it
                return false;
            }
            let kth = entry.hits.last().map_or(f32::NEG_INFINITY, |h| h.score);
            // keep the entry only when the new vector provably cannot enter
            // its top-K
            dot(&v, &entry.query) < kth
        });
        let ns = t0.elapsed().as_nanos() as u64;
        let m = &self.metrics;
        m.ingested.inc();
        m.invalidated.add(dropped as u64);
        m.cache_len.set(self.cache.lock().len() as f64);
        match durability {
            Some(Durability::Synced) => m.journal_synced.inc(),
            Some(Durability::Buffered) => m.journal_buffered.inc(),
            None => {}
        }
        m.ingest_ns.record(ns);
        Ok(IngestAck { id, durable: matches!(durability, Some(Durability::Synced)) })
    }

    /// Atomically snapshots the current index through the attached store
    /// (compacting the journal).
    ///
    /// # Errors
    /// No store attached, mid-recovery state, or the store's own failures.
    pub fn persist(&self) -> Result<(), ServeError> {
        let guard = self.index.read();
        let IndexState::Ready(index) = &*guard else {
            return Err(ServeError::Recovering);
        };
        let mut store = self.store.lock();
        let Some(store) = store.as_mut() else {
            return Err(ServeError::Invalid("no store attached".into()));
        };
        store.save_snapshot(index)
    }

    /// Takes the index offline for recovery. Queries keep being answered —
    /// cache hits stale, misses empty-degraded — and ingests are refused
    /// until [`QueryEngine::complete_recovery`].
    pub fn begin_recovery(&self) {
        *self.index.write() = IndexState::Recovering;
    }

    /// `true` while the index is offline.
    pub fn is_recovering(&self) -> bool {
        matches!(&*self.index.read(), IndexState::Recovering)
    }

    /// Swaps a recovered index back in and clears the (possibly stale)
    /// cache.
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] when the recovered index's width
    /// differs from what the engine was built for.
    pub fn complete_recovery(&self, index: AnnIndex) -> Result<(), ServeError> {
        if index.dim() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, got: index.dim() });
        }
        *self.layout.write() = index.layout();
        *self.index.write() = IndexState::Ready(index);
        self.cache.lock().clear();
        self.metrics.cache_len.set(0.0);
        self.metrics.recoveries.inc();
        Ok(())
    }

    /// Full poisoned-state recovery through the attached store: takes the
    /// index offline, reloads snapshot + journal, and swaps the recovered
    /// index back in. On failure the engine stays in the recovering state
    /// (serving stale/degraded) rather than panicking.
    ///
    /// # Errors
    /// No store attached, or the store's load failing.
    pub fn recover_from_store(&self) -> Result<RecoveryStats, ServeError> {
        self.begin_recovery();
        let recovery = {
            let mut store = self.store.lock();
            let Some(store) = store.as_mut() else {
                return Err(ServeError::Invalid("no store attached".into()));
            };
            store.load()?
        };
        let stats = RecoveryStats {
            recovered_len: recovery.index.len(),
            replayed: recovery.replayed,
            skipped: recovery.skipped,
            discarded_tail: recovery.discarded_tail,
        };
        self.complete_recovery(recovery.index)?;
        Ok(stats)
    }

    /// Current counters and latency summaries — a typed view over the same
    /// registry [`QueryEngine::metrics`] exports.
    pub fn stats(&self) -> StatsSnapshot {
        let cache_len = self.cache.lock().len() as u64;
        self.metrics.cache_len.set(cache_len as f64);
        let m = &self.metrics;
        StatsSnapshot {
            queries: m.queries.get(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            batches: m.batches.get(),
            largest_batch: m.largest_batch.get() as u64,
            ingested: m.ingested.get(),
            invalidated: m.invalidated.get(),
            cache_len,
            degraded: m.degraded.get(),
            shed_overload: m.shed_overload.get(),
            shed_expired: m.shed_expired.get(),
            stale_serves: m.stale_serves.get(),
            journal_synced: m.journal_synced.get(),
            journal_buffered: m.journal_buffered.get(),
            recoveries: m.recoveries.get(),
            search: LatencySummary::of(&m.search_ns),
            cache_lookup: LatencySummary::of(&m.cache_ns),
            ingest: LatencySummary::of(&m.ingest_ns),
        }
    }

    /// Read access to the wrapped index.
    ///
    /// # Errors
    /// [`ServeError::Recovering`] while the index is offline.
    pub fn with_index<R>(&self, f: impl FnOnce(&AnnIndex) -> R) -> Result<R, ServeError> {
        match &*self.index.read() {
            IndexState::Ready(index) => Ok(f(index)),
            IndexState::Recovering => Err(ServeError::Recovering),
        }
    }

    /// Unwraps the (possibly grown) index, e.g. to persist it.
    ///
    /// # Errors
    /// [`ServeError::Recovering`] while the index is offline.
    pub fn into_index(self) -> Result<AnnIndex, ServeError> {
        match self.index.into_inner() {
            IndexState::Ready(index) => Ok(index),
            IndexState::Recovering => Err(ServeError::Recovering),
        }
    }
}

/// What [`QueryEngine::recover_from_store`] found.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RecoveryStats {
    /// Vectors in the recovered index.
    pub recovered_len: usize,
    /// Journal records replayed on top of the snapshot.
    pub replayed: usize,
    /// Records skipped as already compacted.
    pub skipped: usize,
    /// Whether a torn (unacknowledged) journal tail was discarded.
    pub discarded_tail: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    fn engine(n: usize, seed: u64) -> QueryEngine {
        let index = AnnIndex::build(random_vectors(n, 8, seed), IndexConfig::default());
        QueryEngine::new(index, EngineConfig::default())
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let e = engine(120, 1);
        let q = random_vectors(1, 8, 2).pop().unwrap();
        let first = e.query(q.clone(), 5).unwrap();
        let second = e.query(q, 5).unwrap();
        assert_eq!(first.hits, second.hits);
        assert!(!first.degraded && !second.degraded);
        let s = e.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.batches, 2);
        assert_eq!(s.degraded, 0);
    }

    #[test]
    fn enqueued_requests_coalesce_into_one_batch() {
        let e = engine(200, 3);
        let tickets: Vec<u64> = random_vectors(6, 8, 4)
            .into_iter()
            .map(|v| e.enqueue(QueryRequest::new(v, 3)).unwrap())
            .collect();
        let processed = e.flush();
        assert_eq!(processed.len(), 6);
        for t in tickets {
            let response = e.take(t).expect("flushed");
            assert_eq!(response.hits.len(), 3);
            assert!(e.take(t).is_none(), "tickets redeem once");
        }
        let s = e.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.largest_batch, 6);
    }

    #[test]
    fn query_batch_preserves_order() {
        let e = engine(150, 5);
        let qs = random_vectors(4, 8, 6);
        let reqs: Vec<QueryRequest> = qs.iter().map(|q| QueryRequest::new(q.clone(), 2)).collect();
        let batch = e.query_batch(reqs).unwrap();
        for (q, response) in qs.iter().zip(&batch) {
            // compare through the engine's normalisation so scores match
            // bit for bit
            assert_eq!(response.hits, e.with_index(|i| i.search(&normalized(q), 2)).unwrap());
        }
    }

    #[test]
    fn ingest_appears_in_results_and_invalidates_precisely() {
        let e = engine(100, 7);
        // two cached queries pointing in (near-)opposite directions
        let q_hot = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let q_cold = vec![-1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        e.query(q_hot.clone(), 3).unwrap();
        e.query(q_cold.clone(), 3).unwrap();
        assert_eq!(e.stats().cache_len, 2);
        // the ingested vector aligns with q_hot, so only that entry dies
        let ack = e.ingest_vector(vec![10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(!ack.durable, "no store attached");
        let s = e.stats();
        assert_eq!(s.ingested, 1);
        assert_eq!(s.invalidated, 1);
        assert_eq!(s.cache_len, 1);
        // re-query: fresh search must now rank the newcomer first
        let hits = e.query(q_hot, 3).unwrap().hits;
        assert_eq!(hits[0].id, ack.id);
        // the untouched cold entry still serves from cache
        let before = e.stats().cache_hits;
        e.query(q_cold, 3).unwrap();
        assert_eq!(e.stats().cache_hits, before + 1);
    }

    #[test]
    fn stats_latencies_populate() {
        let e = engine(300, 9);
        for q in random_vectors(10, 8, 10) {
            e.query(q, 4).unwrap();
        }
        e.ingest_vector(random_vectors(1, 8, 11).pop().unwrap()).unwrap();
        let s = e.stats();
        assert_eq!(s.search.count, 10);
        assert!(s.search.p99_ns >= s.search.p50_ns);
        assert!(s.search.mean_ns > 0);
        assert_eq!(s.ingest.count, 1);
        assert_eq!(s.cache_lookup.count, 10);
    }

    #[test]
    fn flush_on_empty_queue_is_a_noop() {
        let e = engine(50, 12);
        assert!(e.flush().is_empty());
        assert_eq!(e.stats().batches, 0);
    }

    #[test]
    fn into_index_round_trips_growth() {
        let e = engine(60, 13);
        e.ingest_vector(random_vectors(1, 8, 14).pop().unwrap()).unwrap();
        let idx = e.into_index().unwrap();
        assert_eq!(idx.len(), 61);
    }

    #[test]
    fn width_mismatches_are_typed_errors_not_panics() {
        let e = engine(80, 15);
        assert!(matches!(
            e.query(vec![1.0; 3], 5),
            Err(ServeError::DimensionMismatch { expected: 8, got: 3 })
        ));
        assert!(matches!(
            e.ingest_vector(vec![1.0; 9]),
            Err(ServeError::DimensionMismatch { expected: 8, got: 9 })
        ));
    }

    #[test]
    fn exhausted_deadline_returns_degraded_partial() {
        let e = engine(2000, 16);
        let q = random_vectors(1, 8, 17).pop().unwrap();
        let response =
            e.query_request(QueryRequest::new(q, 10).with_deadline(Duration::ZERO)).unwrap();
        assert!(response.degraded);
        assert_eq!(response.reason, Some(DegradeReason::Deadline));
        assert_eq!(e.stats().degraded, 1);
        // degraded (partial) results must not poison the cache
        assert_eq!(e.stats().cache_len, 0);
    }

    #[test]
    fn generous_deadline_is_full_fidelity() {
        let e = QueryEngine::new(
            AnnIndex::build(random_vectors(500, 8, 18), IndexConfig::default()),
            EngineConfig {
                default_deadline: Some(Duration::from_secs(60)),
                cache_capacity: 64,
                ..EngineConfig::default()
            },
        );
        let q = random_vectors(1, 8, 19).pop().unwrap();
        let response = e.query(q.clone(), 5).unwrap();
        assert!(!response.degraded);
        assert_eq!(response.hits, e.with_index(|i| i.search(&normalized(&q), 5)).unwrap());
    }

    #[test]
    fn default_rerank_params_share_cache_with_plain_queries() {
        let e = engine(150, 30);
        let q = random_vectors(1, 8, 31).pop().unwrap();
        let plain = e.query(q.clone(), 5).unwrap();
        // uniform weights + λ=0 canonicalise to None: same cache entry,
        // same results, bit for bit
        let layout = e.layout();
        let req = QueryRequest::new(q, 5).with_rerank(RerankParams::uniform(layout.len()));
        assert!(req.rerank.is_none(), "default params must canonicalise away");
        let again = e.query_request(req).unwrap();
        assert_eq!(again.hits, plain.hits);
        assert_eq!(e.stats().cache_hits, 1);
    }

    #[test]
    fn reranked_queries_cache_separately_and_die_on_ingest() {
        let index = AnnIndex::build(random_vectors(200, 8, 32), IndexConfig::default())
            .with_layout(
                crate::facet::FacetLayout::new(vec!["a".into(), "b".into()], vec![4, 4]).unwrap(),
            )
            .unwrap();
        let e = QueryEngine::new(index, EngineConfig::default());
        let q = random_vectors(1, 8, 33).pop().unwrap();
        let plain = e.query(q.clone(), 5).unwrap();
        let params = RerankParams { weights: vec![1.0, 0.0], lambda: 0.0, candidates: 50 };
        let faceted =
            e.query_request(QueryRequest::new(q.clone(), 5).with_rerank(params.clone())).unwrap();
        assert!(!faceted.degraded);
        // two cache entries: the fused one and the fingerprinted one
        assert_eq!(e.stats().cache_len, 2);
        assert_eq!(e.stats().cache_misses, 2);
        // repeating the faceted query hits its own entry
        let again =
            e.query_request(QueryRequest::new(q.clone(), 5).with_rerank(params.clone())).unwrap();
        assert_eq!(again.hits, faceted.hits);
        assert_eq!(e.stats().cache_hits, 1);
        // an ingest far from the plain query's top-k keeps the fused
        // entry but must drop every reranked entry unconditionally
        let kth = plain.hits.last().unwrap().score;
        let away: Vec<f32> = normalized(&q).iter().map(|x| -x).collect();
        assert!(kth > 0.0, "top-5 of 200 random vectors has positive cosine");
        e.ingest_vector(away).unwrap();
        assert_eq!(e.stats().cache_len, 1, "only the fused entry survives");
    }

    #[test]
    fn rerank_weights_restrict_scoring_to_a_facet() {
        // facet a = first 4 dims, facet b = last 4; corpus has one paper
        // aligned with each half
        let mut vectors = random_vectors(60, 8, 34);
        vectors[0] = vec![0.9, 0.1, 0.2, 0.1, 0.0, 0.0, 0.0, 0.0];
        vectors[1] = vec![0.0, 0.0, 0.0, 0.0, 0.9, 0.2, 0.1, 0.1];
        // damp the rest so the planted pair dominates
        for v in vectors.iter_mut().skip(2) {
            for x in v.iter_mut() {
                *x *= 0.05;
            }
        }
        let index = AnnIndex::build(vectors, IndexConfig::default())
            .with_layout(
                crate::facet::FacetLayout::new(vec!["a".into(), "b".into()], vec![4, 4]).unwrap(),
            )
            .unwrap();
        let e = QueryEngine::new(index, EngineConfig::default());
        let q = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let only_b = RerankParams { weights: vec![0.0, 1.0], lambda: 0.0, candidates: 60 };
        let hits =
            e.query_request(QueryRequest::new(q.clone(), 1).with_rerank(only_b)).unwrap().hits;
        assert_eq!(hits[0].id, 1, "weighting facet b must surface the b-aligned paper");
        let only_a = RerankParams { weights: vec![1.0, 0.0], lambda: 0.0, candidates: 60 };
        let hits = e.query_request(QueryRequest::new(q, 1).with_rerank(only_a)).unwrap().hits;
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn invalid_rerank_params_are_rejected_at_the_door() {
        let e = engine(80, 35);
        // engine without facets has a 1-segment layout: 3 weights is a
        // typed usage error, not a panic or a silent truncation
        let bad = RerankParams { weights: vec![1.0, 0.5, 0.1], lambda: 0.0, candidates: 10 };
        let q = random_vectors(1, 8, 36).pop().unwrap();
        assert!(matches!(
            e.query_request(QueryRequest::new(q.clone(), 5).with_rerank(bad)),
            Err(ServeError::InvalidFacets { .. })
        ));
        let bad_lambda = RerankParams { weights: vec![1.0], lambda: 2.0, candidates: 10 };
        assert!(matches!(
            e.query_request(QueryRequest::new(q, 5).with_rerank(bad_lambda)),
            Err(ServeError::InvalidFacets { .. })
        ));
    }

    #[test]
    fn recovery_serves_stale_cache_and_refuses_ingest() {
        let e = engine(100, 20);
        let q = random_vectors(1, 8, 21).pop().unwrap();
        let warm = e.query(q.clone(), 4).unwrap();
        e.begin_recovery();
        assert!(e.is_recovering());
        // cached entry: served, but flagged stale
        let stale = e.query(q.clone(), 4).unwrap();
        assert!(stale.degraded);
        assert_eq!(stale.reason, Some(DegradeReason::Stale));
        assert_eq!(stale.hits, warm.hits);
        // cache miss: empty + unavailable, not a block or panic
        let fresh = e.query(random_vectors(1, 8, 22).pop().unwrap(), 4).unwrap();
        assert!(fresh.degraded);
        assert_eq!(fresh.reason, Some(DegradeReason::Unavailable));
        assert!(fresh.hits.is_empty());
        // ingest refused with a typed error
        assert!(matches!(
            e.ingest_vector(random_vectors(1, 8, 23).pop().unwrap()),
            Err(ServeError::Recovering)
        ));
        assert!(matches!(e.with_index(|i| i.len()), Err(ServeError::Recovering)));
        // swap an index back in: fresh searches resume, cache was cleared
        let index = AnnIndex::build(random_vectors(100, 8, 20), IndexConfig::default());
        e.complete_recovery(index).unwrap();
        assert!(!e.is_recovering());
        let back = e.query(q, 4).unwrap();
        assert!(!back.degraded);
        let s = e.stats();
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.stale_serves, 1);
    }
}
