//! A slab-backed LRU cache for query results.
//!
//! Entries live in a `Vec` of optional slots threaded into a doubly-linked
//! recency list by index (no pointer juggling, no unsafe); a `HashMap`
//! resolves keys to slots and freed slots are recycled. All operations are
//! O(1) except [`LruCache::retain`], which is O(n) by nature.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache with a fixed capacity.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A new cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn slot(&self, i: usize) -> &Slot<K, V> {
        self.slots[i].as_ref().expect("live slot")
    }

    fn slot_mut(&mut self, i: usize) -> &mut Slot<K, V> {
        self.slots[i].as_mut().expect("live slot")
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slot(i);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
    }

    /// Links slot `i` at the head (most recent).
    fn link_front(&mut self, i: usize) {
        let old_head = self.head;
        {
            let s = self.slot_mut(i);
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slot_mut(old_head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, marking the entry most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.slot(i).value)
    }

    /// Inserts (or replaces) `key → value`; returns the evicted
    /// least-recently-used entry when the cache was full.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&i) = self.map.get(&key) {
            self.slot_mut(i).value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let dead = self.slots[lru].take().expect("live slot");
            self.map.remove(&dead.key);
            self.free.push(lru);
            Some((dead.key, dead.value))
        } else {
            None
        };
        let fresh = Slot { key: key.clone(), value, prev: NIL, next: NIL };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(fresh);
                i
            }
            None => {
                self.slots.push(Some(fresh));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.map.remove(key)?;
        self.unlink(i);
        let dead = self.slots[i].take().expect("live slot");
        self.free.push(i);
        Some(dead.value)
    }

    /// Drops every entry for which `keep` returns `false`; returns how many
    /// entries were dropped.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let mut dropped = Vec::new();
        let mut i = self.head;
        while i != NIL {
            let s = self.slot(i);
            if !keep(&s.key, &s.value) {
                dropped.push(i);
            }
            i = s.next;
        }
        for &i in &dropped {
            self.unlink(i);
            let dead = self.slots[i].take().expect("live slot");
            self.map.remove(&dead.key);
            self.free.push(i);
        }
        dropped.len()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most to least recently used (test/diagnostic helper).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            let s = self.slot(i);
            out.push(s.key.clone());
            i = s.next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        assert!(c.insert(1, "a").is_none());
        assert!(c.insert(2, "b").is_none());
        assert!(c.insert(3, "c").is_none());
        // touch 1 so 2 becomes LRU
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.insert(4, "d"), Some((2, "b")));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.keys_by_recency(), vec![4, 1, 3]);
    }

    #[test]
    fn replace_updates_without_evicting() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.insert(1, 11).is_none());
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(2);
        c.insert("x", 1);
        c.insert("y", 2);
        assert_eq!(c.remove(&"x"), Some(1));
        assert_eq!(c.remove(&"x"), None);
        assert_eq!(c.len(), 1);
        c.insert("z", 3);
        c.insert("w", 4); // evicts y
        assert_eq!(c.get(&"y"), None);
        assert_eq!(c.keys_by_recency(), vec!["w", "z"]);
    }

    #[test]
    fn retain_drops_matching_entries() {
        let mut c = LruCache::new(8);
        for i in 0..6 {
            c.insert(i, i * i);
        }
        let dropped = c.retain(|k, _| k % 2 == 0);
        assert_eq!(dropped, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&3), None);
        assert_eq!(c.get(&4), Some(&16));
        // the survivors' list stays consistent: fill to capacity again
        for i in 10..15 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(2);
        c.insert(1, 1);
        c.clear();
        assert!(c.is_empty());
        c.insert(2, 2);
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u8, u8>::new(0);
    }

    #[test]
    fn capacity_one_cycles() {
        let mut c = LruCache::new(1);
        assert!(c.insert(1, "a").is_none());
        assert_eq!(c.insert(2, "b"), Some((1, "a")));
        assert_eq!(c.insert(3, "c"), Some((2, "b")));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!(c.capacity(), 1);
    }
}
