//! The scatter-gather router: one query fans out across every shard on the
//! rayon pool, per-shard top-K lists come back globally addressed, and a
//! bounded binary-heap merge produces the final ranking.
//!
//! **Routing.** Ingestion is routed to the shard owning the next global id
//! (see [`crate::shard`] for the arithmetic): the router picks the
//! smallest unassigned id among *healthy* shards — `min over s of
//! len_s · N + s` — which keeps the positional id invariant intact even
//! after a shard recovers shorter than its peers (lost never-acknowledged
//! tail records are simply re-assignable ids) and naturally rebalances a
//! healed shard by steering ingests at it until it catches up.
//!
//! **Failure model.** A shard whose store dies goes down alone: queries
//! keep being answered from the remaining shards, honestly flagged
//! [`DegradeReason::ShardsDown`], and [`ShardRouter::recover_shard`] heals
//! exactly the dead shard from its own snapshot+journal pair while the
//! rest keep serving warm caches. Ingests whose owning shard is down fail
//! with a typed [`ServeError::ShardDown`].
//!
//! **Persistence layout.** Shard `i` of `base` lives at `base.shard<i>`
//! (its journal alongside, as always), and `base.manifest` records the
//! shard count and vector width so `open` and `verify` can walk the
//! family without guessing.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rayon::prelude::*;
use sem_obs::{Counter, Gauge, Histogram, Registry};
use serde::{Deserialize, Serialize};

use crate::engine::{
    DegradeReason, IngestAck, LatencySummary, QueryRequest, QueryResponse, RecoveryStats,
};
use crate::error::ServeError;
use crate::facet::FacetLayout;
use crate::index::{AnnIndex, Hit, ReclusterReport};
use crate::shard::{
    merge_top_k, shard_of, CompactionReport, LocalHits, MaintenanceStatus, Shard, ShardConfig,
    ShardStatsSnapshot,
};
use crate::store::{Durability, IndexStore, VerifyReport};

/// Snapshot path of shard `i`: `base.shard<i>`.
pub fn shard_snapshot_path(base: &Path, shard: usize) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".shard{shard}"));
    PathBuf::from(name)
}

/// Manifest path for a sharded index family: `base.manifest`.
pub fn manifest_path(base: &Path) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(".manifest");
    PathBuf::from(name)
}

/// On-disk description of a sharded index family.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Manifest format version (1).
    pub version: u32,
    /// Number of shards.
    pub shards: usize,
    /// Vector width every shard serves.
    pub dim: usize,
}

impl ShardManifest {
    /// Reads and validates `base.manifest`.
    ///
    /// # Errors
    /// Missing file, malformed JSON, or an unsupported version.
    pub fn load(base: &Path) -> Result<Self, ServeError> {
        let path = manifest_path(base);
        let text = std::fs::read_to_string(&path).map_err(|e| ServeError::io(&path, e))?;
        let m: ShardManifest = serde_json::from_str(&text)
            .map_err(|e| ServeError::corrupt(&path, format!("manifest rejected: {e}")))?;
        if m.version != 1 {
            return Err(ServeError::corrupt(
                &path,
                format!("unsupported manifest version {}", m.version),
            ));
        }
        if m.shards == 0 {
            return Err(ServeError::corrupt(&path, "manifest declares zero shards"));
        }
        Ok(m)
    }

    /// Atomically writes `base.manifest`.
    ///
    /// # Errors
    /// Serialisation or IO failures.
    pub fn save(&self, base: &Path) -> Result<(), ServeError> {
        let path = manifest_path(base);
        let bytes = serde_json::to_string_pretty(self)
            .map_err(|e| ServeError::Invalid(format!("manifest serialisation: {e}")))?
            .into_bytes();
        sem_train::atomic::write_atomic_retry(
            &path,
            &bytes,
            &sem_train::retry::RetryPolicy::default(),
        )
        .map_err(|e| ServeError::io(&path, e))
    }

    /// `true` when `base` names a sharded family (manifest file present).
    pub fn exists(base: &Path) -> bool {
        manifest_path(base).exists()
    }
}

/// Router-level metric handles.
struct RouterMetrics {
    registry: Arc<Registry>,
    queries: Arc<Counter>,
    fanouts: Arc<Counter>,
    merge_ns: Arc<Histogram>,
    degraded: Arc<Counter>,
    shards_down_serves: Arc<Counter>,
    ingested: Arc<Counter>,
    hedges: Arc<Counter>,
    hedge_wins: Arc<Counter>,
    slow_omits: Arc<Counter>,
    shed_overload: Arc<Counter>,
    shed_expired: Arc<Counter>,
    inflight: Arc<Gauge>,
}

impl RouterMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        RouterMetrics {
            queries: registry.counter("serve.router.queries"),
            fanouts: registry.counter("serve.router.fanouts"),
            merge_ns: registry.histogram("serve.router.merge.ns"),
            degraded: registry.counter("serve.router.degraded"),
            shards_down_serves: registry.counter("serve.router.shards_down_serves"),
            ingested: registry.counter("serve.router.ingested"),
            hedges: registry.counter("serve.router.hedges"),
            hedge_wins: registry.counter("serve.router.hedge.wins"),
            slow_omits: registry.counter("serve.router.slow_omits"),
            shed_overload: registry.counter("serve.shed.overload"),
            shed_expired: registry.counter("serve.shed.expired"),
            inflight: registry.gauge("serve.router.inflight"),
            registry,
        }
    }
}

/// Hedged scatter-gather knobs (see [`ShardRouter::set_hedge`]).
///
/// **Invariant:** hedging never changes *what* a shard would answer, only
/// *whether the router keeps waiting* — whenever every shard beats the
/// soft timeout (no hedge fires), the merged result is bit-identical to
/// the plain rayon fan-out's.
#[derive(Clone, Copy, Debug)]
pub struct HedgeConfig {
    /// How long the router waits for a shard's first attempt before
    /// launching a hedged retry against the same shard.
    pub soft_timeout: Duration,
    /// Additional grace granted to hedged retries; a shard that answers
    /// with neither attempt inside it is omitted from the merge and the
    /// response degrades with [`DegradeReason::ShardSlow`].
    pub hedge_wait: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            soft_timeout: Duration::from_millis(25),
            hedge_wait: Duration::from_millis(25),
        }
    }
}

/// Admission state: a bounded budget of concurrently-served queries.
/// `max_inflight == 0` disables shedding (the default).
struct Admission {
    max_inflight: AtomicUsize,
    retry_after_ms: AtomicU64,
    inflight: AtomicUsize,
}

/// RAII inflight slot: decrements on drop, so every exit path (including
/// errors and panicking shard scans) releases its budget.
struct AdmissionPermit<'a> {
    admission: &'a Admission,
    gauge: &'a Gauge,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
        self.gauge.add(-1.0);
    }
}

impl Admission {
    fn unbounded() -> Self {
        Admission {
            max_inflight: AtomicUsize::new(0),
            retry_after_ms: AtomicU64::new(100),
            inflight: AtomicUsize::new(0),
        }
    }

    /// Takes an inflight slot or sheds with [`ServeError::Overloaded`].
    fn acquire<'a>(&'a self, gauge: &'a Gauge) -> Result<AdmissionPermit<'a>, ServeError> {
        let max = self.max_inflight.load(Ordering::Acquire);
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if max > 0 && prev >= max {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return Err(ServeError::Overloaded {
                retry_after_ms: self.retry_after_ms.load(Ordering::Acquire),
            });
        }
        gauge.add(1.0);
        Ok(AdmissionPermit { admission: self, gauge })
    }
}

/// What one scatter produced, before merge + degradation accounting.
struct Gather {
    lists: Vec<Vec<Hit>>,
    shards_down: usize,
    slow_omits: usize,
    deadline_degraded: bool,
    fanouts: u64,
    hedges: u64,
    hedge_wins: u64,
}

/// Point-in-time router counters plus every shard's snapshot.
#[derive(Clone, Debug, Serialize)]
pub struct RouterStatsSnapshot {
    /// Total vectors across shards.
    pub len: usize,
    /// Number of shards.
    pub shards: usize,
    /// Shards currently down.
    pub shards_down: usize,
    /// Queries answered.
    pub queries: u64,
    /// Shard searches fanned out (≤ queries × shards).
    pub fanouts: u64,
    /// Responses flagged degraded (any reason).
    pub degraded: u64,
    /// Responses served with at least one shard missing.
    pub shards_down_serves: u64,
    /// Papers ingested through the router.
    pub ingested: u64,
    /// Hedged retries launched against straggling shards.
    pub hedges: u64,
    /// Hedged retries that answered before the original attempt.
    pub hedge_wins: u64,
    /// Shard results omitted from a merge because neither attempt beat
    /// the hedge budget.
    pub slow_omits: u64,
    /// Queries shed at admission ([`ServeError::Overloaded`]).
    pub shed_overload: u64,
    /// Queries shed because their deadline had already expired on
    /// arrival (no shard was scanned).
    pub shed_expired: u64,
    /// Queries currently being served.
    pub inflight: u64,
    /// Per-query merge latency.
    pub merge: LatencySummary,
    /// Per-shard counters.
    pub per_shard: Vec<ShardStatsSnapshot>,
}

/// Integrity report for one shard of a family.
#[derive(Debug, Serialize)]
pub struct ShardVerifyEntry {
    /// Shard ordinal.
    pub shard: usize,
    /// `true` when this shard's pair would recover cleanly.
    pub ok: bool,
    /// The shard store's full report.
    pub report: VerifyReport,
}

/// Operator-facing integrity report over a whole sharded family
/// (`sem index verify` on a manifest-bearing path).
#[derive(Debug, Serialize)]
pub struct ShardedVerifyReport {
    /// Declared shard count.
    pub shards: usize,
    /// Vector width from the manifest.
    pub dim: usize,
    /// Per-shard verdicts.
    pub per_shard: Vec<ShardVerifyEntry>,
    /// `true` only when every shard verifies clean.
    pub ok: bool,
}

/// Verifies every shard store of the family at `base` without mutating
/// anything: manifest first, then each shard's snapshot+journal pair.
///
/// # Errors
/// Only a missing/corrupt manifest errors; per-shard failures land in the
/// report with `ok: false`.
pub fn verify_sharded(base: &Path) -> Result<ShardedVerifyReport, ServeError> {
    let manifest = ShardManifest::load(base)?;
    let per_shard: Vec<ShardVerifyEntry> = (0..manifest.shards)
        .map(|i| {
            let report = IndexStore::open(shard_snapshot_path(base, i)).verify();
            ShardVerifyEntry { shard: i, ok: report.ok, report }
        })
        .collect();
    let ok = per_shard.iter().all(|e| e.ok);
    Ok(ShardedVerifyReport { shards: manifest.shards, dim: manifest.dim, per_shard, ok })
}

/// The sharded serving engine: N [`Shard`]s behind one scatter-gather
/// front end.
pub struct ShardRouter {
    /// `Arc` so hedged fan-out can hand a straggling shard to a detached
    /// thread without borrowing from the router's lifetime.
    shards: Vec<Arc<Shard>>,
    dim: usize,
    config: ShardConfig,
    /// Serialises global-id assignment across concurrent ingests.
    ingest_lock: Mutex<()>,
    admission: Admission,
    hedge: Mutex<Option<HedgeConfig>>,
    metrics: RouterMetrics,
}

impl ShardRouter {
    /// Builds a sharded index over `vectors` (global ids are assigned in
    /// order, round-robin across shards), recording metrics into a private
    /// registry.
    ///
    /// # Errors
    /// Empty input, fewer vectors than shards, inconsistent widths, or a
    /// zero shard count.
    pub fn try_build(vectors: Vec<Vec<f32>>, config: ShardConfig) -> Result<Self, ServeError> {
        Self::try_build_with_metrics(vectors, config, Arc::new(Registry::new()))
    }

    /// [`ShardRouter::try_build`] recording into a shared registry.
    ///
    /// # Errors
    /// Same as [`ShardRouter::try_build`].
    pub fn try_build_with_metrics(
        vectors: Vec<Vec<f32>>,
        config: ShardConfig,
        registry: Arc<Registry>,
    ) -> Result<Self, ServeError> {
        if config.shards == 0 {
            return Err(ServeError::Invalid("shard count must be at least 1".into()));
        }
        if vectors.is_empty() {
            return Err(ServeError::EmptyIndex);
        }
        if vectors.len() < config.shards {
            return Err(ServeError::Invalid(format!(
                "cannot split {} vectors across {} shards (every shard needs at least one)",
                vectors.len(),
                config.shards
            )));
        }
        let dim = vectors[0].len();
        let n = config.shards;
        // round-robin partition: global i → shard i % n, local i / n
        let mut parts: Vec<Vec<Vec<f32>>> = (0..n).map(|_| Vec::new()).collect();
        for (i, v) in vectors.into_iter().enumerate() {
            parts[i % n].push(v);
        }
        // shard-parallel k-means builds; Mutex<Option<…>> lets each worker
        // take its partition by value without cloning the vectors
        let parts: Vec<Mutex<Option<Vec<Vec<f32>>>>> =
            parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let indexes: Vec<Result<AnnIndex, ServeError>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let part = parts[i].lock().take().expect("each partition is built exactly once");
                AnnIndex::try_build(part, config.index)
            })
            .collect();
        let mut shards = Vec::with_capacity(n);
        for (i, built) in indexes.into_iter().enumerate() {
            let index = built?;
            if index.dim() != dim {
                return Err(ServeError::DimensionMismatch { expected: dim, got: index.dim() });
            }
            shards.push(Arc::new(Shard::new(i, n, index, config.cache_capacity, &registry)));
        }
        Ok(ShardRouter {
            shards,
            dim,
            config,
            ingest_lock: Mutex::new(()),
            admission: Admission::unbounded(),
            hedge: Mutex::new(None),
            metrics: RouterMetrics::new(registry),
        })
    }

    /// Opens the sharded family at `base`: reads the manifest, recovers
    /// every shard from its snapshot+journal pair and attaches the stores,
    /// so later ingests journal to the owning shard.
    ///
    /// # Errors
    /// Manifest problems, or any shard failing to recover (opening is an
    /// all-or-nothing operation — partial families are what
    /// [`verify_sharded`] diagnoses).
    pub fn open(
        base: &Path,
        config: ShardConfig,
    ) -> Result<(Self, Vec<RecoveryStats>), ServeError> {
        Self::open_with_metrics(base, config, Arc::new(Registry::new()))
    }

    /// [`ShardRouter::open`] recording into a shared registry.
    ///
    /// # Errors
    /// Same as [`ShardRouter::open`].
    pub fn open_with_metrics(
        base: &Path,
        config: ShardConfig,
        registry: Arc<Registry>,
    ) -> Result<(Self, Vec<RecoveryStats>), ServeError> {
        let manifest = ShardManifest::load(base)?;
        let n = manifest.shards;
        let mut shards = Vec::with_capacity(n);
        let mut recoveries = Vec::with_capacity(n);
        for i in 0..n {
            let mut store = IndexStore::open(shard_snapshot_path(base, i));
            store.set_metrics(&registry);
            let recovery = store.load()?;
            if recovery.index.dim() != manifest.dim {
                return Err(ServeError::DimensionMismatch {
                    expected: manifest.dim,
                    got: recovery.index.dim(),
                });
            }
            recoveries.push(RecoveryStats {
                recovered_len: recovery.index.len(),
                replayed: recovery.replayed,
                skipped: recovery.skipped,
                discarded_tail: recovery.discarded_tail,
            });
            let shard = Shard::new(i, n, recovery.index, config.cache_capacity, &registry);
            shard.attach_store(store);
            shards.push(Arc::new(shard));
        }
        let router = ShardRouter {
            shards,
            dim: manifest.dim,
            config: ShardConfig { shards: n, ..config },
            ingest_lock: Mutex::new(()),
            admission: Admission::unbounded(),
            hedge: Mutex::new(None),
            metrics: RouterMetrics::new(registry),
        };
        Ok((router, recoveries))
    }

    /// Attaches a fresh store (at the family layout under `base`) to every
    /// shard and writes the manifest — after this, [`ShardRouter::persist_all`]
    /// and per-shard journaling work.
    ///
    /// # Errors
    /// Manifest write failures.
    pub fn attach_stores(&self, base: &Path) -> Result<(), ServeError> {
        ShardManifest { version: 1, shards: self.shards.len(), dim: self.dim }.save(base)?;
        for shard in &self.shards {
            let mut store = IndexStore::open(shard_snapshot_path(base, shard.ordinal()));
            store.set_metrics(&self.metrics.registry);
            shard.attach_store(store);
        }
        Ok(())
    }

    /// Snapshots every shard through its store (compacting each journal).
    ///
    /// # Errors
    /// The first shard that fails to persist (stores must be attached).
    pub fn persist_all(&self) -> Result<(), ServeError> {
        for shard in &self.shards {
            shard.persist()?;
        }
        Ok(())
    }

    /// The registry this router (and its shards) record into.
    pub fn metrics(&self) -> Arc<Registry> {
        self.metrics.registry.clone()
    }

    /// Vector width the router serves.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total vectors across all shards (last-known lengths for down
    /// shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the router holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct access to shard `i` (tests, diagnostics, targeted healing).
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// The facet layout the family serves: the first healthy shard's (all
    /// shards carry the same layout), or the single-fused-segment fallback
    /// when none is attached / every shard is down.
    pub fn layout(&self) -> FacetLayout {
        self.shards
            .iter()
            .find_map(|s| s.with_index(|i| i.layout()).ok())
            .unwrap_or_else(|| FacetLayout::fused(self.dim))
    }

    /// Attaches `layout` to every shard's index (pure metadata — stage-1
    /// results are unchanged; persisted with each shard's next snapshot).
    ///
    /// # Errors
    /// A width mismatch, or any shard being down (layouts must stay
    /// family-uniform, so a partial attach is refused).
    pub fn set_layout(&self, layout: FacetLayout) -> Result<(), ServeError> {
        for shard in &self.shards {
            shard.set_layout(layout.clone())?;
        }
        Ok(())
    }

    /// Switches every shard to SQ8 quantized scan mode (stage-0 candidate
    /// generation over u8 codes, exact f32 rescore of the top candidates
    /// before the merge — see [`AnnIndex::enable_sq8`]). Persisted with
    /// each shard's next snapshot.
    ///
    /// # Errors
    /// Any shard being down (scan modes must stay family-uniform, so a
    /// partial switch is refused), or non-finite vectors.
    pub fn enable_sq8(&self) -> Result<(), ServeError> {
        for shard in &self.shards {
            shard.enable_sq8()?;
        }
        Ok(())
    }

    /// `true` when every healthy shard scans quantized codes.
    pub fn is_quantized(&self) -> bool {
        let mut any = false;
        for shard in &self.shards {
            match shard.with_index(|i| i.is_quantized()) {
                Ok(true) => any = true,
                Ok(false) => return false,
                Err(_) => {}
            }
        }
        any
    }

    /// Bytes held by SQ8 codes+scales over bytes held by f32 vectors,
    /// summed across healthy shards (`None` when unquantized). ~0.25 for
    /// the expected 4x memory cut.
    pub fn quant_memory_ratio(&self) -> Option<f64> {
        let mut quant = 0usize;
        let mut full = 0usize;
        for shard in &self.shards {
            let (q, f) = shard.with_index(|i| (i.quant_bytes(), i.vector_bytes())).ok()?;
            quant += q?;
            full += f;
        }
        (full > 0).then(|| quant as f64 / full as f64)
    }

    /// Top-`k` across all shards for `vector`.
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] on a width mismatch.
    pub fn query(&self, vector: Vec<f32>, k: usize) -> Result<QueryResponse, ServeError> {
        self.query_request(QueryRequest::new(vector, k))
    }

    /// Bounds concurrent queries: once `max_inflight` are being served,
    /// further [`ShardRouter::query_request`] calls shed with
    /// [`ServeError::Overloaded`] carrying `retry_after_ms` as the backoff
    /// hint. `max_inflight == 0` disables shedding (the default).
    pub fn set_admission(&self, max_inflight: usize, retry_after_ms: u64) {
        self.admission.max_inflight.store(max_inflight, Ordering::Release);
        self.admission.retry_after_ms.store(retry_after_ms, Ordering::Release);
    }

    /// Enables (`Some`) or disables (`None`) hedged scatter-gather. With
    /// hedging on, each shard's first attempt gets
    /// [`HedgeConfig::soft_timeout`] to answer; stragglers get a hedged
    /// retry and [`HedgeConfig::hedge_wait`] more, after which they are
    /// omitted and the response degrades with
    /// [`DegradeReason::ShardSlow`].
    pub fn set_hedge(&self, hedge: Option<HedgeConfig>) {
        *self.hedge.lock() = hedge;
    }

    /// Top-`k` across all shards, honouring the request's deadline: the
    /// query is normalised once, fanned out shard-parallel, and the
    /// per-shard top-K lists are heap-merged. Down shards degrade the
    /// response ([`DegradeReason::ShardsDown`]) instead of failing it;
    /// straggling shards past the hedge budget degrade it with
    /// [`DegradeReason::ShardSlow`]; deadline-truncated shard scans
    /// degrade it with [`DegradeReason::Deadline`]. A request carrying
    /// [`QueryRequest::with_rerank`] parameters widens the fan-out to the
    /// candidate pool and rescores the merged pool with facet weights +
    /// MMR diversity (see [`crate::rerank`]).
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] on a width mismatch;
    /// [`ServeError::InvalidFacets`] when rerank parameters do not fit
    /// the family's layout;
    /// [`ServeError::DeadlineExceeded`] when the deadline (measured from
    /// [`QueryRequest::arrival`]) had already expired on entry — the
    /// request is shed before any shard is scanned;
    /// [`ServeError::Overloaded`] when the admission budget (see
    /// [`ShardRouter::set_admission`]) is exhausted.
    pub fn query_request(&self, request: QueryRequest) -> Result<QueryResponse, ServeError> {
        if request.vector.len() != self.dim {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim,
                got: request.vector.len(),
            });
        }
        if let Some(params) = &request.rerank {
            params.validate(&self.layout())?;
        }
        let now = Instant::now();
        let arrival = request.arrival.unwrap_or(now);
        let deadline = request.deadline.map(|b| arrival + b);
        if let Some(d) = deadline {
            if d <= now {
                // expired while queued upstream: scanning would produce a
                // result nobody can use — shed without touching any shard
                self.metrics.shed_expired.inc();
                return Err(ServeError::DeadlineExceeded);
            }
        }
        let _permit = match self.admission.acquire(&self.metrics.inflight) {
            Ok(p) => p,
            Err(e) => {
                self.metrics.shed_overload.inc();
                return Err(e);
            }
        };
        // the raw query goes to every shard: each shard normalises
        // internally, the very arithmetic a single index would run, so
        // per-shard scores are bit-identical to the unsharded scan's
        let q = request.vector;
        let k = request.k;
        // stage 1: a rerank request widens every shard's fetch to the
        // candidate pool; with no rerank, fetch == k and the whole path
        // is bit-identical to before
        let fetch = request.rerank.as_ref().map_or(k, |r| r.candidates.max(k));
        let hedge = *self.hedge.lock();
        let gather = match hedge {
            Some(h) => self.scatter_hedged(&q, fetch, deadline, h)?,
            None => self.scatter_rayon(&q, fetch, deadline)?,
        };
        let t0 = Instant::now();
        let mut hits = merge_top_k(&gather.lists, fetch);
        self.metrics.merge_ns.record(t0.elapsed().as_nanos() as u64);
        // stage 2: rescore the merged pool with facet weights + MMR.
        // Candidate vectors live on their owning shards; one that died (or
        // recovered shorter) mid-query simply contributes no candidates —
        // the response is already flagged degraded for that.
        if let Some(params) = &request.rerank {
            let n = self.shards.len();
            let layout = self.layout();
            let qn = crate::engine::normalized(&q);
            let owned: Vec<(Hit, Vec<f32>)> = hits
                .iter()
                .filter_map(|h| {
                    let local = h.id / n;
                    self.shards[shard_of(h.id, n)]
                        .with_index(|i| (local < i.len()).then(|| i.vector(local).to_vec()))
                        .ok()
                        .flatten()
                        .map(|v| (*h, v))
                })
                .collect();
            let pool: Vec<(Hit, &[f32])> = owned.iter().map(|(h, v)| (*h, v.as_slice())).collect();
            hits = crate::rerank::rerank(&qn, &layout, params, &pool, k);
        } else {
            hits.truncate(k);
        }
        self.metrics.queries.inc();
        self.metrics.fanouts.add(gather.fanouts);
        self.metrics.hedges.add(gather.hedges);
        self.metrics.hedge_wins.add(gather.hedge_wins);
        self.metrics.slow_omits.add(gather.slow_omits as u64);
        let response = if gather.shards_down > 0 {
            self.metrics.degraded.inc();
            self.metrics.shards_down_serves.inc();
            QueryResponse { hits, degraded: true, reason: Some(DegradeReason::ShardsDown) }
        } else if gather.slow_omits > 0 {
            self.metrics.degraded.inc();
            QueryResponse { hits, degraded: true, reason: Some(DegradeReason::ShardSlow) }
        } else if gather.deadline_degraded {
            self.metrics.degraded.inc();
            QueryResponse { hits, degraded: true, reason: Some(DegradeReason::Deadline) }
        } else {
            QueryResponse { hits, degraded: false, reason: None }
        };
        Ok(response)
    }

    /// Plain shard-parallel fan-out on the rayon pool — the default path,
    /// and the reference hedged scatter must stay bit-identical to.
    fn scatter_rayon(
        &self,
        q: &[f32],
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<Gather, ServeError> {
        let results: Vec<Result<LocalHits, ServeError>> =
            self.shards.par_iter().map(|s| s.search_local(q, k, deadline)).collect();
        let mut gather = Gather {
            lists: Vec::with_capacity(results.len()),
            shards_down: 0,
            slow_omits: 0,
            deadline_degraded: false,
            fanouts: 0,
            hedges: 0,
            hedge_wins: 0,
        };
        for r in results {
            Self::fold_local(&mut gather, r)?;
        }
        Ok(gather)
    }

    /// Hedged fan-out: one detached thread per shard, answers collected
    /// over a channel. Shards that miss the soft timeout get a hedged
    /// retry (first answer wins); shards that also miss the hedge grace
    /// are omitted. Straggler threads are left to finish on their own —
    /// their sends land in a channel nobody reads, and their scan still
    /// warms the shard cache for the next query.
    fn scatter_hedged(
        &self,
        q: &[f32],
        k: usize,
        deadline: Option<Instant>,
        h: HedgeConfig,
    ) -> Result<Gather, ServeError> {
        type Answer = (usize, u8, Result<LocalHits, ServeError>);
        let n = self.shards.len();
        let (tx, rx) = mpsc::channel::<Answer>();
        let spawn_attempt = |i: usize, attempt: u8| {
            let shard = Arc::clone(&self.shards[i]);
            let q = q.to_vec();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let r = shard.search_local(&q, k, deadline);
                // the receiver may be gone (request already answered
                // without us) — that is the expected straggler fate
                let _ = tx.send((i, attempt, r));
            });
        };
        for i in 0..n {
            spawn_attempt(i, 0);
        }
        let mut slots: Vec<Option<Result<LocalHits, ServeError>>> = (0..n).map(|_| None).collect();
        let mut answered = 0usize;
        let mut hedge_wins = 0u64;
        let drain = |until: Instant,
                     slots: &mut Vec<Option<Result<LocalHits, ServeError>>>,
                     answered: &mut usize,
                     hedge_wins: &mut u64| {
            while *answered < n {
                let timeout = until.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok((i, attempt, r)) => {
                        if slots[i].is_none() {
                            if attempt == 1 {
                                *hedge_wins += 1;
                            }
                            slots[i] = Some(r);
                            *answered += 1;
                        }
                    }
                    Err(_) => break, // timeout (or every sender finished)
                }
            }
        };
        drain(Instant::now() + h.soft_timeout, &mut slots, &mut answered, &mut hedge_wins);
        let mut hedges = 0u64;
        if answered < n {
            for (i, slot) in slots.iter().enumerate() {
                if slot.is_none() {
                    spawn_attempt(i, 1);
                    hedges += 1;
                }
            }
            drain(Instant::now() + h.hedge_wait, &mut slots, &mut answered, &mut hedge_wins);
        }
        drop(tx);
        let mut gather = Gather {
            lists: Vec::with_capacity(n),
            shards_down: 0,
            slow_omits: 0,
            deadline_degraded: false,
            fanouts: 0,
            hedges,
            hedge_wins,
        };
        for slot in slots {
            match slot {
                Some(r) => Self::fold_local(&mut gather, r)?,
                None => gather.slow_omits += 1,
            }
        }
        Ok(gather)
    }

    /// Folds one shard answer into the gather (shared by both scatter
    /// paths so their accounting cannot drift).
    fn fold_local(gather: &mut Gather, r: Result<LocalHits, ServeError>) -> Result<(), ServeError> {
        match r {
            Ok(local) => {
                if !local.cached {
                    gather.fanouts += 1;
                }
                gather.deadline_degraded |= local.deadline_degraded;
                gather.lists.push(local.hits);
                Ok(())
            }
            Err(ServeError::ShardDown { .. }) => {
                gather.shards_down += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Answers a whole batch in request order (each request fans out
    /// shard-parallel in turn).
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] when any request's width is
    /// wrong.
    pub fn query_batch(
        &self,
        requests: Vec<QueryRequest>,
    ) -> Result<Vec<QueryResponse>, ServeError> {
        requests.into_iter().map(|r| self.query_request(r)).collect()
    }

    /// Ingests one paper: assigns the smallest unassigned global id among
    /// healthy shards, journals to the owning shard (fsync before ack when
    /// a store is attached) and inserts — other shards' caches are never
    /// touched.
    ///
    /// # Errors
    /// Width mismatch, every shard down, or the owning shard's journal
    /// failing (in which case that shard goes down and nothing is acked).
    pub fn ingest_vector(&self, vector: Vec<f32>) -> Result<IngestAck, ServeError> {
        if vector.len() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        let _route = self.ingest_lock.lock();
        let n = self.shards.len();
        let target = self
            .shards
            .iter()
            .filter(|s| !s.is_down())
            .min_by_key(|s| s.len() * n + s.ordinal())
            .ok_or_else(|| ServeError::ShardDown {
                shard: 0,
                detail: "every shard is down".into(),
            })?;
        let global = target.len() * n + target.ordinal();
        debug_assert_eq!(shard_of(global, n), target.ordinal());
        let durability = target.ingest_local(global, vector)?;
        self.metrics.ingested.inc();
        Ok(IngestAck { id: global, durable: matches!(durability, Some(Durability::Synced)) })
    }

    /// Heals shard `i` — and only shard `i` — from its own store.
    ///
    /// # Errors
    /// Out-of-range ordinal, no store attached, or recovery failing (the
    /// shard stays down).
    pub fn recover_shard(&self, i: usize) -> Result<RecoveryStats, ServeError> {
        let Some(shard) = self.shards.get(i) else {
            return Err(ServeError::Invalid(format!(
                "shard {i} out of range (router has {})",
                self.shards.len()
            )));
        };
        shard.recover_from_store()
    }

    /// Online-compacts shard `i`'s journal: queries keep serving the whole
    /// time, ingest pauses only for the final catch-up and commit (see
    /// [`Shard::compact_online`]).
    ///
    /// # Errors
    /// Out-of-range ordinal, no store attached, shard down, or the store's
    /// own failures.
    pub fn compact_shard_online(&self, i: usize) -> Result<CompactionReport, ServeError> {
        self.checked_shard(i)?.compact_online()
    }

    /// Re-trains shard `i`'s centroid table against its live corpus and
    /// swaps it in with epoch handover (see [`Shard::recluster`]). A
    /// zero-drift re-train swaps nothing.
    ///
    /// # Errors
    /// Out-of-range ordinal or the shard being down.
    pub fn recluster_shard(&self, i: usize) -> Result<ReclusterReport, ServeError> {
        self.checked_shard(i)?.recluster()
    }

    /// Point-in-time maintenance view of every shard (drift, handover
    /// epochs, journal tails).
    pub fn maintenance_status(&self) -> Vec<MaintenanceStatus> {
        self.shards.iter().map(|s| s.maintenance_status()).collect()
    }

    /// Switches every shard's journal batching: `1` fsyncs per append,
    /// larger values batch `n` appends per fsync — the streaming-ingest
    /// mode (acks come back [`Durability::Buffered`]).
    pub fn set_journal_batch(&self, flush_every: usize) {
        for shard in &self.shards {
            shard.set_journal_batch(flush_every);
        }
    }

    /// Flushes buffered journal records on every shard (makes every
    /// previously buffered ack durable). The first failure aborts the
    /// sweep.
    ///
    /// # Errors
    /// Any shard's store failing to flush.
    pub fn sync_stores(&self) -> Result<(), ServeError> {
        for shard in &self.shards {
            shard.sync_store()?;
        }
        Ok(())
    }

    fn checked_shard(&self, i: usize) -> Result<&Shard, ServeError> {
        self.shards.get(i).map(Arc::as_ref).ok_or_else(|| {
            ServeError::Invalid(format!(
                "shard {i} out of range (router has {})",
                self.shards.len()
            ))
        })
    }

    /// Current router counters plus each shard's snapshot.
    pub fn stats(&self) -> RouterStatsSnapshot {
        let per_shard: Vec<ShardStatsSnapshot> = self.shards.iter().map(|s| s.stats()).collect();
        RouterStatsSnapshot {
            len: self.len(),
            shards: self.shards.len(),
            shards_down: per_shard.iter().filter(|s| s.down).count(),
            queries: self.metrics.queries.get(),
            fanouts: self.metrics.fanouts.get(),
            degraded: self.metrics.degraded.get(),
            shards_down_serves: self.metrics.shards_down_serves.get(),
            ingested: self.metrics.ingested.get(),
            hedges: self.metrics.hedges.get(),
            hedge_wins: self.metrics.hedge_wins.get(),
            slow_omits: self.metrics.slow_omits.get(),
            shed_overload: self.metrics.shed_overload.get(),
            shed_expired: self.metrics.shed_expired.get(),
            inflight: self.admission.inflight.load(Ordering::Acquire) as u64,
            merge: LatencySummary::of(&self.metrics.merge_ns),
            per_shard,
        }
    }

    /// The configuration the router was built with.
    pub fn config(&self) -> ShardConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    fn flat_config(shards: usize) -> ShardConfig {
        // exact per-shard scans so results are reference-comparable
        ShardConfig {
            shards,
            index: IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
            cache_capacity: 64,
        }
    }

    #[test]
    fn sharded_results_match_single_flat_scan() {
        let vectors = random_vectors(240, 10, 1);
        let single = AnnIndex::build(
            vectors.clone(),
            IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
        );
        for n in [1usize, 2, 4, 8] {
            let router = ShardRouter::try_build(vectors.clone(), flat_config(n)).unwrap();
            for (qi, q) in random_vectors(6, 10, 2).into_iter().enumerate() {
                let merged = router.query(q.clone(), 12).unwrap();
                assert!(!merged.degraded);
                assert_eq!(merged.hits, single.search(&q, 12), "n={n} q={qi}");
            }
        }
    }

    #[test]
    fn faceted_default_weights_stay_bit_identical_across_shard_counts() {
        use crate::facet::RerankParams;
        let vectors = random_vectors(240, 10, 21);
        let single = AnnIndex::build(
            vectors.clone(),
            IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
        );
        let layout =
            FacetLayout::new(vec!["bg".into(), "method".into(), "result".into()], vec![3, 4, 3])
                .unwrap();
        for n in [1usize, 2, 4, 8] {
            let router = ShardRouter::try_build(vectors.clone(), flat_config(n)).unwrap();
            router.set_layout(layout.clone()).unwrap();
            assert_eq!(router.layout(), layout);
            for (qi, q) in random_vectors(5, 10, 22).into_iter().enumerate() {
                let req = QueryRequest::new(q.clone(), 12).with_rerank(RerankParams::uniform(3));
                let merged = router.query_request(req).unwrap();
                assert!(!merged.degraded);
                assert_eq!(merged.hits, single.search(&q, 12), "n={n} q={qi}");
            }
        }
    }

    #[test]
    fn rerank_redirects_relevance_across_shards_and_rejects_bad_params() {
        use crate::facet::RerankParams;
        // facet a is dims 0..2, facet b is dims 2..4; papers 0..6 align
        // with a, papers 6..8 with b — round-robin places them on
        // different shards
        let mut vectors: Vec<Vec<f32>> =
            (0..6).map(|i| vec![1.0, 0.01 * i as f32, 0.0, 0.0]).collect();
        vectors.push(vec![0.0, 0.0, 1.0, 0.0]);
        vectors.push(vec![0.0, 0.0, 0.9, 0.1]);
        let router = ShardRouter::try_build(vectors, flat_config(4)).unwrap();
        let layout = FacetLayout::new(vec!["a".into(), "b".into()], vec![2, 2]).unwrap();
        router.set_layout(layout).unwrap();
        let q = vec![1.0, 0.0, 0.5, 0.0];
        // plain top-2 is a-aligned; weighting facet b alone must surface
        // the b-aligned papers from whichever shards own them
        let plain = router.query(q.clone(), 2).unwrap();
        assert!(plain.hits.iter().all(|h| h.id < 6), "{:?}", plain.hits);
        let only_b = RerankParams { weights: vec![0.0, 1.0], lambda: 0.0, candidates: 8 };
        let out =
            router.query_request(QueryRequest::new(q.clone(), 2).with_rerank(only_b)).unwrap();
        assert_eq!(
            out.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![6, 7],
            "facet-b weighting must rank the b-aligned papers first"
        );
        // wrong arity and out-of-range λ are typed errors at the door
        // (all-1.0 weights would canonicalise to the default path, so use
        // a weight that survives canonicalisation)
        let bad = RerankParams { weights: vec![0.5], lambda: 0.0, candidates: 8 };
        assert!(matches!(
            router.query_request(QueryRequest::new(q.clone(), 2).with_rerank(bad)),
            Err(ServeError::InvalidFacets { .. })
        ));
        let bad_lambda = RerankParams { weights: vec![1.0, 1.0], lambda: 1.5, candidates: 8 };
        assert!(matches!(
            router.query_request(QueryRequest::new(q, 2).with_rerank(bad_lambda)),
            Err(ServeError::InvalidFacets { .. })
        ));
    }

    #[test]
    fn quantized_scatter_gather_keeps_recall_and_exact_scores() {
        let vectors = random_vectors(2000, 16, 70);
        let single = AnnIndex::build(
            vectors.clone(),
            IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
        );
        let router = ShardRouter::try_build(vectors, flat_config(2)).unwrap();
        assert!(!router.is_quantized());
        router.enable_sq8().unwrap();
        assert!(router.is_quantized());
        let ratio = router.quant_memory_ratio().unwrap();
        assert!(ratio < 0.3, "codes/vectors byte ratio {ratio}");
        let queries = random_vectors(20, 16, 71);
        let mut overlap = 0usize;
        for q in &queries {
            let merged = router.query(q.clone(), 10).unwrap();
            assert!(!merged.degraded);
            let exact = single.search_exact(q, 10);
            overlap += exact.iter().filter(|e| merged.hits.iter().any(|h| h.id == e.id)).count();
            // merged scores are f32-rescore-backed: any id shared with the
            // exact scan carries the identical exact score
            for h in &merged.hits {
                if let Some(e) = exact.iter().find(|e| e.id == h.id) {
                    assert!((h.score - e.score).abs() < 1e-5);
                }
            }
        }
        let recall = overlap as f64 / (10 * queries.len()) as f64;
        assert!(recall >= 0.95, "sharded quantized recall@10 {recall}");
    }

    #[test]
    fn quantized_family_roundtrips_through_stores() {
        let dir = std::env::temp_dir().join(format!("sem-router-quant-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("family.snap");
        let vectors = random_vectors(80, 8, 72);
        let router = ShardRouter::try_build(vectors, flat_config(2)).unwrap();
        router.enable_sq8().unwrap();
        router.attach_stores(&base).unwrap();
        router.persist_all().unwrap();
        let (reopened, _) = ShardRouter::open(&base, flat_config(2)).unwrap();
        assert!(reopened.is_quantized(), "quantization must survive snapshot + reopen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn family_layout_roundtrips_through_stores() {
        let dir = std::env::temp_dir().join(format!("sem-router-facet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("family.snap");
        let vectors = random_vectors(60, 9, 23);
        let router = ShardRouter::try_build(vectors, flat_config(3)).unwrap();
        let layout = FacetLayout::sem(3);
        router.set_layout(layout.clone()).unwrap();
        router.attach_stores(&base).unwrap();
        router.persist_all().unwrap();
        let (reopened, _) = ShardRouter::open(&base, flat_config(3)).unwrap();
        assert_eq!(reopened.layout(), layout, "layout must survive snapshot + reopen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_routes_round_robin_and_matches_reference() {
        let vectors = random_vectors(40, 6, 3);
        let router = ShardRouter::try_build(vectors.clone(), flat_config(4)).unwrap();
        let mut reference = AnnIndex::build(
            vectors,
            IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
        );
        for v in random_vectors(13, 6, 4) {
            let ack = router.ingest_vector(v.clone()).unwrap();
            assert_eq!(ack.id, reference.insert(v));
        }
        assert_eq!(router.len(), 53);
        let q = random_vectors(1, 6, 5).pop().unwrap();
        assert_eq!(router.query(q.clone(), 9).unwrap().hits, reference.search(&q, 9));
        // ingests spread across shards: lengths differ by at most one
        let lens: Vec<usize> = (0..4).map(|i| router.shard(i).len()).collect();
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        assert!(max - min <= 1, "{lens:?}");
    }

    #[test]
    fn width_mismatches_are_typed_errors() {
        let router = ShardRouter::try_build(random_vectors(20, 5, 6), flat_config(2)).unwrap();
        assert!(matches!(
            router.query(vec![0.0; 3], 4),
            Err(ServeError::DimensionMismatch { expected: 5, got: 3 })
        ));
        assert!(matches!(
            router.ingest_vector(vec![0.0; 9]),
            Err(ServeError::DimensionMismatch { expected: 5, got: 9 })
        ));
    }

    #[test]
    fn build_rejects_degenerate_shapes() {
        assert!(matches!(
            ShardRouter::try_build(Vec::new(), flat_config(2)),
            Err(ServeError::EmptyIndex)
        ));
        assert!(ShardRouter::try_build(random_vectors(3, 4, 7), flat_config(8)).is_err());
        assert!(ShardRouter::try_build(random_vectors(3, 4, 7), flat_config(0)).is_err());
    }

    #[test]
    fn persist_open_roundtrip_preserves_results() {
        let dir = std::env::temp_dir().join(format!("sem-router-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("family.snap");
        let vectors = random_vectors(90, 8, 8);
        let router = ShardRouter::try_build(vectors, flat_config(3)).unwrap();
        router.attach_stores(&base).unwrap();
        router.persist_all().unwrap();
        let ack = router.ingest_vector(random_vectors(1, 8, 9).pop().unwrap()).unwrap();
        assert!(ack.durable, "journaled + fsynced through the owning shard's store");
        let (reopened, recoveries) = ShardRouter::open(&base, flat_config(3)).unwrap();
        assert_eq!(reopened.len(), 91);
        assert_eq!(recoveries.iter().map(|r| r.replayed).sum::<usize>(), 1);
        let q = random_vectors(1, 8, 10).pop().unwrap();
        assert_eq!(reopened.query(q.clone(), 7).unwrap().hits, router.query(q, 7).unwrap().hits);
        let report = verify_sharded(&base).unwrap();
        assert!(report.ok, "{report:?}");
        assert_eq!(report.per_shard.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_expose_per_shard_counters() {
        let router = ShardRouter::try_build(random_vectors(60, 6, 11), flat_config(3)).unwrap();
        let q = random_vectors(1, 6, 12).pop().unwrap();
        router.query(q.clone(), 5).unwrap();
        router.query(q, 5).unwrap(); // all three shards hit their caches
        let s = router.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.fanouts, 3, "second round was all cache hits");
        assert_eq!(s.per_shard.len(), 3);
        assert!(s.per_shard.iter().all(|p| p.cache_hits == 1 && p.cache_misses == 1));
        assert_eq!(s.shards_down, 0);
    }
}
