//! Deterministic fault injection for the persistence layer.
//!
//! A [`FaultPlan`] scripts *where* the simulated machine dies: mid-way
//! through the snapshot temp-file write (torn write), between the snapshot
//! rename and the journal truncation (compaction half-done), right after a
//! given journal append, or while a batch of journal records is still
//! sitting unflushed in the write buffer. The [`crate::store::IndexStore`]
//! consults the plan at each crash point; when a fault fires the store
//! leaves the filesystem exactly as a real crash would and returns
//! [`crate::ServeError::InjectedCrash`] — recovery code is then exercised
//! against that honest wreckage.
//!
//! Post-hoc media corruption (a snapshot truncated or bit-flipped *after* a
//! clean save — disk rot rather than crash) is modelled by the free
//! functions [`truncate_file`] and [`flip_bit`], which tests apply directly
//! to the files.

use std::cell::Cell;
use std::path::Path;

use crate::error::ServeError;

/// Named crash points inside [`crate::store::IndexStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// While writing the snapshot temp file (only a prefix hits disk; the
    /// atomic rename never happens, so the previous snapshot survives).
    SnapshotTempWrite,
    /// After the snapshot rename succeeded but before the journal was
    /// truncated (journal still holds records the snapshot already
    /// contains — replay must be idempotent).
    BeforeJournalTruncate,
    /// Immediately after a journal record was appended and synced (the
    /// record is durable; anything after it is not).
    AfterJournalAppend,
    /// With journal records buffered but not yet flushed (the buffered
    /// records are lost, and were never acknowledged as durable).
    UnflushedJournalBuffer,
    /// Right after online compaction entered side-journal mode (main
    /// buffer flushed, no compacted snapshot written yet — the previous
    /// snapshot plus the main journal still hold everything).
    SideJournalInstall,
    /// During online compaction, after the compacted snapshot was renamed
    /// in and the *main* journal deleted, but before the *side* journal
    /// was deleted (its records are already inside the snapshot — replay
    /// must skip them idempotently).
    BeforeSideJournalTruncate,
}

impl CrashPoint {
    /// Stable human-readable site name (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::SnapshotTempWrite => "snapshot temp write",
            CrashPoint::BeforeJournalTruncate => "before journal truncate",
            CrashPoint::AfterJournalAppend => "after journal append",
            CrashPoint::UnflushedJournalBuffer => "unflushed journal buffer",
            CrashPoint::SideJournalInstall => "side journal install",
            CrashPoint::BeforeSideJournalTruncate => "before side journal truncate",
        }
    }
}

/// A scripted set of crashes. The default plan never fires.
///
/// Each trigger fires at most once; after firing, the owning store is
/// poisoned (every later operation fails) until the "machine" is rebooted
/// by constructing a fresh store over the same paths.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Die after this many bytes of the snapshot temp file are written.
    pub torn_snapshot_after: Option<usize>,
    /// Die after the snapshot rename, before the journal truncation.
    pub crash_before_journal_truncate: bool,
    /// Die right after appending+syncing journal record number `n`
    /// (zero-based count over the store's lifetime).
    pub crash_after_append: Option<usize>,
    /// Die once the unflushed journal buffer holds this many records.
    pub crash_with_buffered: Option<usize>,
    /// Die right after online compaction enters side-journal mode.
    pub crash_on_side_install: bool,
    /// Die after online compaction renamed the snapshot and deleted the
    /// main journal, but before the side journal was deleted.
    pub crash_before_side_truncate: bool,
    /// Fail this many journal-flush attempts with a *transient* (retryable)
    /// I/O error before letting writes through. Unlike the crash triggers,
    /// transient failures do not poison the store — they model an
    /// interrupted syscall the retry layer is expected to absorb.
    pub transient_flush_failures: usize,
    appends_seen: Cell<usize>,
    flush_failures_used: Cell<usize>,
}

impl FaultPlan {
    /// A plan with no faults (production behaviour).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Die after `keep` bytes of the next snapshot temp-file write.
    pub fn torn_snapshot(keep: usize) -> Self {
        FaultPlan { torn_snapshot_after: Some(keep), ..Default::default() }
    }

    /// Die between the snapshot rename and the journal truncation.
    pub fn crash_mid_compaction() -> Self {
        FaultPlan { crash_before_journal_truncate: true, ..Default::default() }
    }

    /// Die right after journal append number `n` (zero-based).
    pub fn crash_after_append(n: usize) -> Self {
        FaultPlan { crash_after_append: Some(n), ..Default::default() }
    }

    /// Die right after online compaction enters side-journal mode.
    pub fn crash_on_side_install() -> Self {
        FaultPlan { crash_on_side_install: true, ..Default::default() }
    }

    /// Die between the main-journal delete and the side-journal delete of
    /// an online compaction's commit step.
    pub fn crash_before_side_truncate() -> Self {
        FaultPlan { crash_before_side_truncate: true, ..Default::default() }
    }

    /// Die once `n` journal records sit unflushed in the batch buffer.
    pub fn crash_with_buffered(n: usize) -> Self {
        FaultPlan { crash_with_buffered: Some(n), ..Default::default() }
    }

    /// Fail the next `n` journal-flush attempts transiently (retryably).
    pub fn transient_flush(n: usize) -> Self {
        FaultPlan { transient_flush_failures: n, ..Default::default() }
    }

    /// How many bytes of a `total`-byte snapshot write survive, when the
    /// torn-write fault is armed.
    pub(crate) fn torn_write_survives(&self, total: usize) -> Option<usize> {
        self.torn_snapshot_after.map(|keep| keep.min(total))
    }

    /// Consults the plan at a journal append; returns the crash error when
    /// the append-counter trigger fires.
    pub(crate) fn on_append(&self) -> Result<(), ServeError> {
        let n = self.appends_seen.get();
        self.appends_seen.set(n + 1);
        if self.crash_after_append == Some(n) {
            return Err(ServeError::InjectedCrash(CrashPoint::AfterJournalAppend.name()));
        }
        Ok(())
    }

    /// Consults the plan after buffering (not flushing) a record.
    pub(crate) fn on_buffered(&self, buffered: usize) -> Result<(), ServeError> {
        if self.crash_with_buffered == Some(buffered) {
            return Err(ServeError::InjectedCrash(CrashPoint::UnflushedJournalBuffer.name()));
        }
        Ok(())
    }

    /// Called once per journal-flush attempt; consumes one scheduled
    /// transient failure if any remain.
    pub(crate) fn on_flush_attempt(&self) -> std::io::Result<()> {
        if self.flush_failures_used.get() < self.transient_flush_failures {
            self.flush_failures_used.set(self.flush_failures_used.get() + 1);
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient journal-flush failure",
            ));
        }
        Ok(())
    }
}

/// Truncates `path` to `len` bytes (simulated torn write / lost tail on the
/// final file).
///
/// # Errors
/// Propagates the underlying IO error.
pub fn truncate_file(path: &Path, len: u64) -> Result<(), ServeError> {
    let f =
        std::fs::OpenOptions::new().write(true).open(path).map_err(|e| ServeError::io(path, e))?;
    f.set_len(len).map_err(|e| ServeError::io(path, e))
}

/// Flips bit `bit` (0–7) of byte `byte` in `path` (simulated media rot).
///
/// # Errors
/// Fails when the offset is out of range or on IO problems.
pub fn flip_bit(path: &Path, byte: usize, bit: u8) -> Result<(), ServeError> {
    let mut bytes = std::fs::read(path).map_err(|e| ServeError::io(path, e))?;
    let Some(b) = bytes.get_mut(byte) else {
        return Err(ServeError::Invalid(format!(
            "flip_bit offset {byte} out of range (file is {} bytes)",
            bytes.len()
        )));
    };
    *b ^= 1 << (bit & 7);
    std::fs::write(path, bytes).map_err(|e| ServeError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_never_fires() {
        let p = FaultPlan::none();
        assert_eq!(p.torn_write_survives(100), None);
        for _ in 0..10 {
            assert!(p.on_append().is_ok());
            assert!(p.on_buffered(3).is_ok());
        }
    }

    #[test]
    fn append_trigger_fires_exactly_once_at_its_index() {
        let p = FaultPlan::crash_after_append(2);
        assert!(p.on_append().is_ok());
        assert!(p.on_append().is_ok());
        assert!(p.on_append().unwrap_err().is_injected());
        // the counter has moved past the trigger
        assert!(p.on_append().is_ok());
    }

    #[test]
    fn transient_flush_failures_are_bounded_and_retryable() {
        let p = FaultPlan::transient_flush(2);
        let e = p.on_flush_attempt().unwrap_err();
        assert!(sem_train::retry::io_retryable(e.kind()));
        assert!(p.on_flush_attempt().is_err());
        assert!(p.on_flush_attempt().is_ok());
        assert!(p.on_flush_attempt().is_ok());
    }

    #[test]
    fn torn_write_clamps_to_payload() {
        let p = FaultPlan::torn_snapshot(1_000_000);
        assert_eq!(p.torn_write_survives(64), Some(64));
        assert_eq!(FaultPlan::torn_snapshot(10).torn_write_survives(64), Some(10));
    }

    #[test]
    fn file_corruption_helpers_edit_in_place() {
        let dir = std::env::temp_dir().join(format!("sem-fault-helpers-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("blob");
        std::fs::write(&f, [0u8, 0, 0, 0]).unwrap();
        flip_bit(&f, 2, 7).unwrap();
        assert_eq!(std::fs::read(&f).unwrap(), vec![0, 0, 0x80, 0]);
        truncate_file(&f, 1).unwrap();
        assert_eq!(std::fs::read(&f).unwrap(), vec![0]);
        assert!(flip_bit(&f, 9, 0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
