//! Open-loop load generation against a [`ShardRouter`].
//!
//! A closed-loop driver (issue, wait, issue) hides queueing: when the
//! server slows down the driver slows down with it, and the measured
//! latency stays flattering. This generator is **open-loop**: arrivals are
//! scheduled on a fixed clock derived solely from the target QPS, and
//! each operation's latency is measured from its *scheduled* arrival time
//! — so time spent waiting behind a backed-up queue counts against the
//! percentiles (no coordinated omission).
//!
//! The run is fully deterministic for a given seed: the operation
//! schedule (query vs ingest, batch size, query vectors) is derived from
//! a seeded RNG before the clock starts, so two runs differ only in
//! measured timing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::engine::QueryRequest;
use crate::error::ServeError;
use crate::router::ShardRouter;

/// Parameters of one open-loop run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Target arrival rate, operations per second.
    pub qps: f64,
    /// Wall-clock length of the run.
    pub duration: Duration,
    /// Batch sizes to cycle through for query operations, sampled
    /// uniformly (e.g. `[1, 1, 4, 16]` biases towards singletons).
    pub batch_mix: Vec<usize>,
    /// Fraction of operations that are ingests instead of queries, in
    /// `[0, 1]`.
    pub ingest_ratio: f64,
    /// Top-K requested per query.
    pub k: usize,
    /// Worker threads draining the arrival queue.
    pub workers: usize,
    /// RNG seed: fixes the operation schedule and every query vector.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            qps: 200.0,
            duration: Duration::from_secs(2),
            batch_mix: vec![1, 1, 1, 4],
            ingest_ratio: 0.05,
            k: 10,
            workers: 4,
            seed: 42,
        }
    }
}

/// What the run measured, JSON-serialisable for CI artifacts and the
/// bench gate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadReport {
    /// Operations completed (queries + ingests).
    pub ops: u64,
    /// Query operations completed (a batch counts once).
    pub queries: u64,
    /// Ingest operations completed.
    pub ingests: u64,
    /// Responses that came back with the degraded flag.
    pub degraded: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Arrival rate the schedule offered.
    pub offered_qps: f64,
    /// Completion rate actually achieved.
    pub achieved_qps: f64,
    /// Median latency, microseconds, scheduled-arrival → completion.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// Corpus size when the run ended.
    pub corpus_len: usize,
}

impl LoadReport {
    /// `true` when the run kept up with the offered load (within
    /// `tolerance`, e.g. 0.9 for "achieved ≥ 90% of offered") and nothing
    /// errored or degraded.
    pub fn sustained(&self, tolerance: f64) -> bool {
        self.errors == 0 && self.degraded == 0 && self.achieved_qps >= self.offered_qps * tolerance
    }
}

/// One scheduled operation, fully determined before the clock starts.
enum Op {
    Query { batch: Vec<Vec<f32>>, k: usize },
    Ingest { vector: Vec<f32> },
}

struct Work {
    op: Op,
    /// When the open-loop schedule says this operation arrived.
    arrival: Instant,
}

struct Queue {
    jobs: Mutex<VecDeque<Work>>,
    ready: Condvar,
    closed: AtomicBool,
}

impl Queue {
    fn push(&self, w: Work) {
        self.jobs.lock().push_back(w);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<Work> {
        let mut jobs = self.jobs.lock();
        loop {
            if let Some(w) = jobs.pop_front() {
                return Some(w);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            self.ready.wait(&mut jobs);
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.jobs.lock().len()
    }
}

/// Runs one open-loop session against `router`.
///
/// # Errors
/// Only configuration problems error the run itself (zero QPS, empty
/// batch mix, zero workers, out-of-range ingest ratio); per-operation
/// failures are counted in the report instead.
pub fn run(router: &ShardRouter, config: &LoadgenConfig) -> Result<LoadReport, ServeError> {
    if !config.qps.is_finite() || config.qps <= 0.0 {
        return Err(ServeError::Invalid("loadgen qps must be positive and finite".into()));
    }
    if config.batch_mix.is_empty() || config.batch_mix.contains(&0) {
        return Err(ServeError::Invalid(
            "loadgen batch mix must be non-empty, all sizes ≥ 1".into(),
        ));
    }
    if config.workers == 0 {
        return Err(ServeError::Invalid("loadgen needs at least one worker".into()));
    }
    if !(0.0..=1.0).contains(&config.ingest_ratio) {
        return Err(ServeError::Invalid("loadgen ingest ratio must be within [0, 1]".into()));
    }

    let dim = router.dim();
    let total_ops = (config.qps * config.duration.as_secs_f64()).ceil().max(1.0) as usize;
    let interval = Duration::from_secs_f64(1.0 / config.qps);

    // Pre-generate the whole schedule so the hot loop only moves clock and
    // queue — and so the run is reproducible from the seed alone.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let random_vector =
        |rng: &mut StdRng| -> Vec<f32> { (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect() };
    let mut schedule = Vec::with_capacity(total_ops);
    for _ in 0..total_ops {
        if rng.gen_bool(config.ingest_ratio) {
            schedule.push(Op::Ingest { vector: random_vector(&mut rng) });
        } else {
            let batch = config.batch_mix[rng.gen_range(0..config.batch_mix.len())];
            schedule.push(Op::Query {
                batch: (0..batch).map(|_| random_vector(&mut rng)).collect(),
                k: config.k,
            });
        }
    }

    let queue = Arc::new(Queue {
        jobs: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        closed: AtomicBool::new(false),
    });
    let queries = AtomicU64::new(0);
    let ingests = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(total_ops));
    let depth_gauge = router.metrics().gauge("loadgen.queue.depth");

    let t_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            let queue = Arc::clone(&queue);
            let queries = &queries;
            let ingests = &ingests;
            let degraded = &degraded;
            let errors = &errors;
            let latencies = &latencies;
            scope.spawn(move || {
                while let Some(work) = queue.pop() {
                    let outcome = match work.op {
                        Op::Query { batch, k } => {
                            let requests =
                                batch.into_iter().map(|v| QueryRequest::new(v, k)).collect();
                            match router.query_batch(requests) {
                                Ok(responses) => {
                                    queries.fetch_add(1, Ordering::Relaxed);
                                    if responses.iter().any(|r| r.degraded) {
                                        degraded.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Ok(())
                                }
                                Err(e) => Err(e),
                            }
                        }
                        Op::Ingest { vector } => match router.ingest_vector(vector) {
                            Ok(_) => {
                                ingests.fetch_add(1, Ordering::Relaxed);
                                Ok(())
                            }
                            Err(e) => Err(e),
                        },
                    };
                    if outcome.is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    // open-loop latency: from scheduled arrival, queueing included
                    let us = work.arrival.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    latencies.lock().push(us);
                }
            });
        }

        // The arrival clock: operation i arrives at t_start + i·interval,
        // whether or not the workers have kept up.
        for (i, op) in schedule.into_iter().enumerate() {
            let arrival = t_start + interval.mul_f64(i as f64);
            if let Some(wait) = arrival.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            queue.push(Work { op, arrival });
            depth_gauge.set_max(queue.depth() as f64);
        }
        queue.close();
    });
    let elapsed = t_start.elapsed();

    let mut samples = latencies.into_inner();
    samples.sort_unstable();
    let pct = |q: f64| -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
        samples[idx.min(samples.len() - 1)]
    };
    let ops = samples.len() as u64;
    Ok(LoadReport {
        ops,
        queries: queries.into_inner(),
        ingests: ingests.into_inner(),
        degraded: degraded.into_inner(),
        errors: errors.into_inner(),
        offered_qps: config.qps,
        achieved_qps: ops as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        max_us: samples.last().copied().unwrap_or(0),
        corpus_len: router.len(),
    })
}

/// Deterministic synthetic corpus for loadgen and benches: `n` vectors of
/// width `dim` from the given seed.
pub fn synthetic_corpus(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::shard::ShardConfig;

    fn small_router() -> ShardRouter {
        let config = ShardConfig {
            shards: 2,
            index: IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
            cache_capacity: 64,
        };
        ShardRouter::try_build(synthetic_corpus(64, 8, 7), config).unwrap()
    }

    #[test]
    fn short_run_completes_every_scheduled_op() {
        let router = small_router();
        let config = LoadgenConfig {
            qps: 400.0,
            duration: Duration::from_millis(250),
            ingest_ratio: 0.1,
            workers: 2,
            ..Default::default()
        };
        let report = run(&router, &config).unwrap();
        assert_eq!(report.ops, 100, "400 qps × 0.25 s");
        assert_eq!(report.ops, report.queries + report.ingests);
        assert_eq!(report.errors, 0);
        assert_eq!(report.degraded, 0);
        assert!(report.p50_us <= report.p90_us && report.p90_us <= report.p99_us);
        assert!(report.max_us >= report.p99_us);
        assert!(report.sustained(0.5), "{report:?}");
        assert_eq!(report.corpus_len, 64 + report.ingests as usize);
    }

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let config = LoadgenConfig {
            qps: 300.0,
            duration: Duration::from_millis(200),
            ingest_ratio: 0.2,
            workers: 2,
            ..Default::default()
        };
        let a = run(&small_router(), &config).unwrap();
        let b = run(&small_router(), &config).unwrap();
        assert_eq!(a.queries, b.queries, "same seed → same query/ingest split");
        assert_eq!(a.ingests, b.ingests);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let router = small_router();
        for bad in [
            LoadgenConfig { qps: 0.0, ..Default::default() },
            LoadgenConfig { batch_mix: vec![], ..Default::default() },
            LoadgenConfig { batch_mix: vec![0], ..Default::default() },
            LoadgenConfig { workers: 0, ..Default::default() },
            LoadgenConfig { ingest_ratio: 1.5, ..Default::default() },
        ] {
            assert!(run(&router, &bad).is_err());
        }
    }
}
