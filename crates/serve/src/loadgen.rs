//! Open-loop load generation against a [`ShardRouter`].
//!
//! A closed-loop driver (issue, wait, issue) hides queueing: when the
//! server slows down the driver slows down with it, and the measured
//! latency stays flattering. This generator is **open-loop**: arrivals are
//! scheduled on a fixed clock derived solely from the target QPS, and
//! each operation's latency is measured from its *scheduled* arrival time
//! — so time spent waiting behind a backed-up queue counts against the
//! percentiles (no coordinated omission).
//!
//! The run is fully deterministic for a given seed: the operation
//! schedule (query vs ingest, batch size, query vectors) is derived from
//! a seeded RNG before the clock starts, so two runs differ only in
//! measured timing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::engine::{DegradeReason, QueryRequest};
use crate::error::ServeError;
use crate::facet::{RerankParams, DEFAULT_CANDIDATES};
use crate::maintenance::{Maintainer, MaintainerStatus, MaintenanceConfig};
use crate::router::{HedgeConfig, ShardRouter};
use crate::supervisor::{ShardSupervisor, SupervisorConfig, SupervisorEvent, SupervisorSnapshot};

/// Parameters of one open-loop run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Target arrival rate, operations per second.
    pub qps: f64,
    /// Wall-clock length of the run.
    pub duration: Duration,
    /// Batch sizes to cycle through for query operations, sampled
    /// uniformly (e.g. `[1, 1, 4, 16]` biases towards singletons).
    pub batch_mix: Vec<usize>,
    /// Fraction of operations that are ingests instead of queries, in
    /// `[0, 1]`.
    pub ingest_ratio: f64,
    /// Fraction of *query* operations that carry facet-rerank parameters
    /// (seeded random per-facet weights and diversity λ), in `[0, 1]`.
    /// `0.0` keeps every query on the plain fused path.
    pub facet_mix: f64,
    /// Top-K requested per query.
    pub k: usize,
    /// Worker threads draining the arrival queue.
    pub workers: usize,
    /// RNG seed: fixes the operation schedule and every query vector.
    pub seed: u64,
    /// Per-operation deadline budget, measured from the operation's
    /// *scheduled* arrival (so queueing delay counts against it and a
    /// backed-up request is shed instead of scanned). `None` = unbounded.
    pub deadline: Option<Duration>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            qps: 200.0,
            duration: Duration::from_secs(2),
            batch_mix: vec![1, 1, 1, 4],
            ingest_ratio: 0.05,
            facet_mix: 0.0,
            k: 10,
            workers: 4,
            seed: 42,
            deadline: None,
        }
    }
}

/// Degraded responses broken out by [`DegradeReason`] — counted per
/// response (one batched operation can contribute several), so chaos
/// runs are diagnosable instead of lumping everything into one number.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DegradeBreakdown {
    /// Deadline budget ran out mid-scan.
    pub deadline: u64,
    /// Served stale from cache during recovery.
    pub stale: u64,
    /// Mid-recovery cache miss (empty response).
    pub unavailable: u64,
    /// One or more shards were down during the merge.
    pub shards_down: u64,
    /// One or more shards straggled past the hedge budget.
    pub shard_slow: u64,
}

/// Thread-shared atomic tallies behind [`DegradeBreakdown`].
#[derive(Default)]
struct ReasonCounts {
    deadline: AtomicU64,
    stale: AtomicU64,
    unavailable: AtomicU64,
    shards_down: AtomicU64,
    shard_slow: AtomicU64,
}

impl ReasonCounts {
    fn count(&self, reason: DegradeReason) {
        let c = match reason {
            DegradeReason::Deadline => &self.deadline,
            DegradeReason::Stale => &self.stale,
            DegradeReason::Unavailable => &self.unavailable,
            DegradeReason::ShardsDown => &self.shards_down,
            DegradeReason::ShardSlow => &self.shard_slow,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> DegradeBreakdown {
        DegradeBreakdown {
            deadline: self.deadline.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            unavailable: self.unavailable.load(Ordering::Relaxed),
            shards_down: self.shards_down.load(Ordering::Relaxed),
            shard_slow: self.shard_slow.load(Ordering::Relaxed),
        }
    }
}

/// `true` when the error is a typed refusal (backpressure) rather than a
/// hard failure: the server *chose* not to serve, and said so honestly.
fn is_shed(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::Overloaded { .. }
            | ServeError::IngestBackpressure { .. }
            | ServeError::DeadlineExceeded
            | ServeError::ShardDown { .. }
    )
}

/// What the run measured, JSON-serialisable for CI artifacts and the
/// bench gate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadReport {
    /// Operations completed (queries + ingests).
    pub ops: u64,
    /// Query operations completed (a batch counts once).
    pub queries: u64,
    /// Query operations that carried facet-rerank parameters (subset of
    /// `queries`, scheduled by [`LoadgenConfig::facet_mix`]).
    pub faceted: u64,
    /// Ingest operations completed.
    pub ingests: u64,
    /// Operations with at least one degraded response.
    pub degraded: u64,
    /// Degraded responses by reason (per response, not per operation).
    pub degraded_by_reason: DegradeBreakdown,
    /// Operations shed with a typed refusal — [`ServeError::Overloaded`],
    /// [`ServeError::IngestBackpressure`], an expired deadline, a down
    /// shard. Backpressure, not failure.
    pub shed: u64,
    /// Of `shed`, query-path admission refusals
    /// ([`ServeError::Overloaded`]) — bounds the query plane alone.
    pub shed_overloaded: u64,
    /// Of `shed`, streaming-ingest refusals
    /// ([`ServeError::IngestBackpressure`]) — bounds the ingest plane
    /// alone. Always 0 outside churn mode (inline ingest never
    /// backpressures).
    pub shed_backpressure: u64,
    /// Operations that failed hard (I/O, corruption, anything untyped).
    pub failed: u64,
    /// Total errored operations, `shed + failed` (kept as one number for
    /// existing tooling).
    pub errors: u64,
    /// Arrival rate the schedule offered.
    pub offered_qps: f64,
    /// Completion rate actually achieved.
    pub achieved_qps: f64,
    /// Median latency, microseconds, scheduled-arrival → completion.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// 99th percentile of **query** operations alone, microseconds —
    /// the SLO number, undiluted by the (cheaper or queued) ingest path.
    pub p99_query_us: u64,
    /// 99th percentile of **ingest** operations alone, microseconds (0
    /// when the run scheduled no ingests). In churn mode this measures
    /// submit-to-queue latency; the apply happens asynchronously.
    pub p99_ingest_us: u64,
    /// Corpus size when the run ended.
    pub corpus_len: usize,
    /// Which distance path served the run: `"sq8"` (quantized stage-0
    /// scan + exact rescore) or `"f32"` (plain exact scan).
    pub scan_mode: String,
    /// p99 attributable to the SQ8 path, microseconds (0 when the run
    /// served f32). A run is mode-uniform, so this is `p99_us` under
    /// SQ8 — kept as its own field so CI can assert both paths across
    /// two runs of the same job.
    pub p99_sq8_us: u64,
    /// p99 attributable to the f32 path, microseconds (0 under SQ8).
    pub p99_f32_us: u64,
}

impl LoadReport {
    /// `true` when the run kept up with the offered load (within
    /// `tolerance`, e.g. 0.9 for "achieved ≥ 90% of offered") and nothing
    /// errored or degraded.
    pub fn sustained(&self, tolerance: f64) -> bool {
        self.errors == 0 && self.degraded == 0 && self.achieved_qps >= self.offered_qps * tolerance
    }
}

/// One scheduled operation, fully determined before the clock starts.
enum Op {
    Query { batch: Vec<Vec<f32>>, k: usize, rerank: Option<RerankParams> },
    Ingest { vector: Vec<f32> },
}

struct Work {
    op: Op,
    /// When the open-loop schedule says this operation arrived.
    arrival: Instant,
}

struct Queue {
    jobs: Mutex<VecDeque<Work>>,
    ready: Condvar,
    closed: AtomicBool,
}

impl Queue {
    fn push(&self, w: Work) {
        self.jobs.lock().push_back(w);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<Work> {
        let mut jobs = self.jobs.lock();
        loop {
            if let Some(w) = jobs.pop_front() {
                return Some(w);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            self.ready.wait(&mut jobs);
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.jobs.lock().len()
    }
}

/// Runs one open-loop session against `router`.
///
/// # Errors
/// Only configuration problems error the run itself (zero QPS, empty
/// batch mix, zero workers, out-of-range ingest ratio); per-operation
/// failures are counted in the report instead.
pub fn run(router: &ShardRouter, config: &LoadgenConfig) -> Result<LoadReport, ServeError> {
    run_with_ingest(router, config, 0.0, &|v| router.ingest_vector(v).map(|_| ()))
}

/// [`run`] with a pluggable ingest sink and an optional distribution
/// shift on the ingested vectors (component 0 offset by
/// `ingest_offset`) — churn mode routes ingests through a
/// [`Maintainer`]'s backpressured queues and streams a drifted
/// distribution so the drift detector has something to detect.
fn run_with_ingest(
    router: &ShardRouter,
    config: &LoadgenConfig,
    ingest_offset: f32,
    ingest: &(dyn Fn(Vec<f32>) -> Result<(), ServeError> + Sync),
) -> Result<LoadReport, ServeError> {
    if !config.qps.is_finite() || config.qps <= 0.0 {
        return Err(ServeError::Invalid("loadgen qps must be positive and finite".into()));
    }
    if config.batch_mix.is_empty() || config.batch_mix.contains(&0) {
        return Err(ServeError::Invalid(
            "loadgen batch mix must be non-empty, all sizes ≥ 1".into(),
        ));
    }
    if config.workers == 0 {
        return Err(ServeError::Invalid("loadgen needs at least one worker".into()));
    }
    if !(0.0..=1.0).contains(&config.ingest_ratio) {
        return Err(ServeError::Invalid("loadgen ingest ratio must be within [0, 1]".into()));
    }
    if !(0.0..=1.0).contains(&config.facet_mix) {
        return Err(ServeError::Invalid("loadgen facet mix must be within [0, 1]".into()));
    }

    let dim = router.dim();
    let total_ops = (config.qps * config.duration.as_secs_f64()).ceil().max(1.0) as usize;
    let interval = Duration::from_secs_f64(1.0 / config.qps);

    // Pre-generate the whole schedule so the hot loop only moves clock and
    // queue — and so the run is reproducible from the seed alone.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let random_vector =
        |rng: &mut StdRng| -> Vec<f32> { (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect() };
    let layout = router.layout();
    let mut schedule = Vec::with_capacity(total_ops);
    for _ in 0..total_ops {
        if rng.gen_bool(config.ingest_ratio) {
            let mut vector = random_vector(&mut rng);
            if let Some(first) = vector.first_mut() {
                *first += ingest_offset;
            }
            schedule.push(Op::Ingest { vector });
        } else {
            let batch = config.batch_mix[rng.gen_range(0..config.batch_mix.len())];
            // a facet-mix query exercises the two-stage path with seeded
            // random weights and a moderate diversity λ; everything about
            // the schedule stays reproducible from the seed alone
            let rerank =
                (config.facet_mix > 0.0 && rng.gen_bool(config.facet_mix)).then(|| RerankParams {
                    weights: (0..layout.len()).map(|_| rng.gen_range(0.05f32..1.0)).collect(),
                    lambda: rng.gen_range(0.0f32..0.5),
                    candidates: DEFAULT_CANDIDATES,
                });
            schedule.push(Op::Query {
                batch: (0..batch).map(|_| random_vector(&mut rng)).collect(),
                k: config.k,
                rerank,
            });
        }
    }

    let queue = Arc::new(Queue {
        jobs: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        closed: AtomicBool::new(false),
    });
    let queries = AtomicU64::new(0);
    let faceted = AtomicU64::new(0);
    let ingests = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let shed_overloaded = AtomicU64::new(0);
    let shed_backpressure = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let reasons = ReasonCounts::default();
    // query and ingest latencies recorded apart so the report can bound
    // the two planes independently
    let query_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(total_ops));
    let ingest_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let depth_gauge = router.metrics().gauge("loadgen.queue.depth");
    let deadline_budget = config.deadline;

    let t_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            let queue = Arc::clone(&queue);
            let queries = &queries;
            let faceted = &faceted;
            let ingests = &ingests;
            let degraded = &degraded;
            let shed = &shed;
            let shed_overloaded = &shed_overloaded;
            let shed_backpressure = &shed_backpressure;
            let failed = &failed;
            let reasons = &reasons;
            let query_latencies = &query_latencies;
            let ingest_latencies = &ingest_latencies;
            scope.spawn(move || {
                while let Some(work) = queue.pop() {
                    let is_ingest = matches!(work.op, Op::Ingest { .. });
                    let outcome = match work.op {
                        Op::Query { batch, k, rerank } => {
                            if rerank.is_some() {
                                faceted.fetch_add(1, Ordering::Relaxed);
                            }
                            // the scheduled arrival rides on the request:
                            // deadlines are measured from it, so a request
                            // that sat out its whole budget in this queue
                            // is shed by the router, not scanned
                            let requests = batch
                                .into_iter()
                                .map(|v| {
                                    let mut r = QueryRequest::new(v, k).with_arrival(work.arrival);
                                    if let Some(b) = deadline_budget {
                                        r = r.with_deadline(b);
                                    }
                                    if let Some(params) = &rerank {
                                        r = r.with_rerank(params.clone());
                                    }
                                    r
                                })
                                .collect();
                            match router.query_batch(requests) {
                                Ok(responses) => {
                                    queries.fetch_add(1, Ordering::Relaxed);
                                    if responses.iter().any(|r| r.degraded) {
                                        degraded.fetch_add(1, Ordering::Relaxed);
                                    }
                                    for r in &responses {
                                        if let Some(reason) = r.reason {
                                            reasons.count(reason);
                                        }
                                    }
                                    Ok(())
                                }
                                Err(e) => Err(e),
                            }
                        }
                        Op::Ingest { vector } => match ingest(vector) {
                            Ok(()) => {
                                ingests.fetch_add(1, Ordering::Relaxed);
                                Ok(())
                            }
                            Err(e) => Err(e),
                        },
                    };
                    if let Err(e) = outcome {
                        if is_shed(&e) {
                            shed.fetch_add(1, Ordering::Relaxed);
                            match e {
                                ServeError::Overloaded { .. } => {
                                    shed_overloaded.fetch_add(1, Ordering::Relaxed);
                                }
                                ServeError::IngestBackpressure { .. } => {
                                    shed_backpressure.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {}
                            }
                        } else {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // open-loop latency: from scheduled arrival, queueing included
                    let us = work.arrival.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    if is_ingest {
                        ingest_latencies.lock().push(us);
                    } else {
                        query_latencies.lock().push(us);
                    }
                }
            });
        }

        // The arrival clock: operation i arrives at t_start + i·interval,
        // whether or not the workers have kept up.
        for (i, op) in schedule.into_iter().enumerate() {
            let arrival = t_start + interval.mul_f64(i as f64);
            if let Some(wait) = arrival.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            queue.push(Work { op, arrival });
            depth_gauge.set_max(queue.depth() as f64);
        }
        queue.close();
    });
    let elapsed = t_start.elapsed();

    let mut query_samples = query_latencies.into_inner();
    query_samples.sort_unstable();
    let mut ingest_samples = ingest_latencies.into_inner();
    ingest_samples.sort_unstable();
    let mut samples = Vec::with_capacity(query_samples.len() + ingest_samples.len());
    samples.extend_from_slice(&query_samples);
    samples.extend_from_slice(&ingest_samples);
    samples.sort_unstable();
    let pct_of = |samples: &[u64], q: f64| -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
        samples[idx.min(samples.len() - 1)]
    };
    let pct = |q: f64| pct_of(&samples, q);
    let ops = samples.len() as u64;
    let (shed, failed) = (shed.into_inner(), failed.into_inner());
    let quantized = router.is_quantized();
    Ok(LoadReport {
        ops,
        queries: queries.into_inner(),
        faceted: faceted.into_inner(),
        ingests: ingests.into_inner(),
        degraded: degraded.into_inner(),
        degraded_by_reason: reasons.snapshot(),
        shed,
        shed_overloaded: shed_overloaded.into_inner(),
        shed_backpressure: shed_backpressure.into_inner(),
        failed,
        errors: shed + failed,
        offered_qps: config.qps,
        achieved_qps: ops as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        max_us: samples.last().copied().unwrap_or(0),
        p99_query_us: pct_of(&query_samples, 0.99),
        p99_ingest_us: pct_of(&ingest_samples, 0.99),
        corpus_len: router.len(),
        scan_mode: if quantized { "sq8".into() } else { "f32".into() },
        p99_sq8_us: if quantized { pct(0.99) } else { 0 },
        p99_f32_us: if quantized { 0 } else { pct(0.99) },
    })
}

/// Deterministic synthetic corpus for loadgen and benches: `n` vectors of
/// width `dim` from the given seed.
pub fn synthetic_corpus(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

/// One kind of injected fault.
#[derive(Clone, Copy, Debug)]
pub enum ChaosKind {
    /// The shard's process "dies": it is forced down and must be healed
    /// by the supervisor from its own store.
    Kill {
        /// Target shard.
        shard: usize,
    },
    /// Garbage bytes are appended to the shard's on-disk journal — a torn
    /// tail the next recovery must discard (and then compact away).
    TornJournal {
        /// Target shard.
        shard: usize,
    },
    /// The shard's next `scans` searches sleep `delay_ms` before
    /// scanning — a straggler the hedged fan-out should absorb.
    LatencySpike {
        /// Target shard.
        shard: usize,
        /// Injected per-scan delay, milliseconds.
        delay_ms: u64,
        /// Number of delayed scans.
        scans: usize,
    },
}

// Struct-variant enums are beyond the vendored serde derive; serialize by
// hand as tagged objects (Duration flattens to `at_ms`).
impl Serialize for ChaosKind {
    fn ser(&self) -> serde::Value {
        use serde::Value;
        let fault = |s: &str| ("fault".to_string(), Value::Str(s.to_string()));
        let int = |name: &str, n: i128| (name.to_string(), Value::Int(n));
        match self {
            ChaosKind::Kill { shard } => {
                Value::Obj(vec![fault("kill"), int("shard", *shard as i128)])
            }
            ChaosKind::TornJournal { shard } => {
                Value::Obj(vec![fault("torn_journal"), int("shard", *shard as i128)])
            }
            ChaosKind::LatencySpike { shard, delay_ms, scans } => Value::Obj(vec![
                fault("latency_spike"),
                int("shard", *shard as i128),
                int("delay_ms", i128::from(*delay_ms)),
                int("scans", *scans as i128),
            ]),
        }
    }
}

/// One fault on the chaos schedule.
#[derive(Clone, Copy, Debug)]
pub struct ChaosEvent {
    /// Offset from the start of the load run.
    pub at: Duration,
    /// What to inject.
    pub kind: ChaosKind,
}

impl Serialize for ChaosEvent {
    fn ser(&self) -> serde::Value {
        use serde::Value;
        let mut fields = vec![(
            "at_ms".to_string(),
            Value::Int(self.at.as_millis().min(i128::MAX as u128) as i128),
        )];
        if let Value::Obj(kind_fields) = self.kind.ser() {
            fields.extend(kind_fields);
        }
        Value::Obj(fields)
    }
}

/// Parameters of a chaos soak: a seeded fault schedule injected while the
/// open-loop load runs, a supervisor healing in the background, and
/// recovery/recall assertions afterwards.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Faults to inject, each at its offset into the run.
    pub events: Vec<ChaosEvent>,
    /// How long after the load ends every shard must be healthy again.
    pub heal_bound: Duration,
    /// Supervisor settings for the run.
    pub supervisor: SupervisorConfig,
    /// Hedging settings for the run (`None` = hedging off).
    pub hedge: Option<HedgeConfig>,
    /// How many original corpus vectors to re-query for the post-run
    /// self-recall check.
    pub recall_probes: usize,
}

impl ChaosConfig {
    /// The canonical seeded schedule over a `duration`-long run: a kill
    /// at 25%, a latency spike at 50% and a torn journal + kill at
    /// 65%/80% (same shard, so the heal must discard the torn tail).
    /// Which shards are hit is derived from `seed`; events never all
    /// target the same shard when `shards > 1`.
    pub fn seeded(seed: u64, shards: usize, duration: Duration) -> Self {
        let a = (seed as usize) % shards;
        let b = (a + 1) % shards;
        ChaosConfig {
            events: vec![
                ChaosEvent { at: duration.mul_f64(0.25), kind: ChaosKind::Kill { shard: a } },
                ChaosEvent {
                    at: duration.mul_f64(0.50),
                    kind: ChaosKind::LatencySpike { shard: a, delay_ms: 40, scans: 24 },
                },
                ChaosEvent {
                    at: duration.mul_f64(0.65),
                    kind: ChaosKind::TornJournal { shard: b },
                },
                ChaosEvent { at: duration.mul_f64(0.80), kind: ChaosKind::Kill { shard: b } },
            ],
            heal_bound: Duration::from_secs(5),
            supervisor: SupervisorConfig {
                probe_interval: Duration::from_millis(25),
                trip_after: 2,
                check_store: false,
                max_journal_tail: None,
                heal_backoff: sem_train::retry::RetryPolicy {
                    max_attempts: 8,
                    base_delay_ms: 20,
                    max_delay_ms: 500,
                    seed,
                },
            },
            hedge: Some(HedgeConfig {
                soft_timeout: Duration::from_millis(25),
                hedge_wait: Duration::from_millis(25),
            }),
            recall_probes: 64,
        }
    }
}

/// What a chaos soak produced.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosRunReport {
    /// The underlying open-loop load report.
    pub load: LoadReport,
    /// Supervisor counters and final per-shard health.
    pub supervisor: SupervisorSnapshot,
    /// Structured supervisor events (probe failures, trips, heals).
    pub events: Vec<SupervisorEvent>,
    /// The schedule that was injected.
    pub injected: Vec<ChaosEvent>,
    /// `true` when every shard was healthy within
    /// [`ChaosConfig::heal_bound`] of the load ending.
    pub healed_within_bound: bool,
    /// How long after the load ended the last shard came back,
    /// milliseconds (0 when everything had already healed mid-run).
    pub heal_wait_ms: u64,
    /// Fraction of probed original-corpus vectors whose self-query
    /// returned themselves as the top hit after the run (1.0 = no
    /// acknowledged data went missing).
    pub self_recall: f64,
    /// Fault injections that themselves failed (should be empty).
    pub injection_errors: Vec<String>,
}

/// Appends a torn (garbage) tail to the shard's journal: a `u32::MAX`
/// length prefix plus junk, which replay classifies as an
/// unacknowledged torn tail and discards.
fn inject_torn_journal(router: &ShardRouter, shard: usize) -> Result<(), ServeError> {
    use std::io::Write;
    let Some(snapshot) = router.shard(shard).store_path() else {
        return Err(ServeError::Invalid(format!("shard {shard} has no store to corrupt")));
    };
    let journal = crate::store::journal_path_for(&snapshot);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&journal)
        .map_err(|e| ServeError::io(&journal, e))?;
    f.write_all(&[0xFF; 16]).map_err(|e| ServeError::io(&journal, e))?;
    f.sync_all().map_err(|e| ServeError::io(&journal, e))?;
    Ok(())
}

/// Runs a chaos soak: starts a [`ShardSupervisor`] over `router`, injects
/// `chaos.events` on schedule while [`run`] drives the load, then checks
/// that every shard healed within bound and that the original corpus
/// (`recall_corpus`, the vectors the router was built from) is still
/// fully retrievable.
///
/// # Errors
/// Configuration problems (invalid load config, out-of-range shard in the
/// schedule). Injected faults and their fallout are *reported*, never
/// errors.
pub fn run_chaos(
    router: &Arc<ShardRouter>,
    config: &LoadgenConfig,
    chaos: &ChaosConfig,
    recall_corpus: &[Vec<f32>],
) -> Result<ChaosRunReport, ServeError> {
    for e in &chaos.events {
        let shard = match e.kind {
            ChaosKind::Kill { shard }
            | ChaosKind::TornJournal { shard }
            | ChaosKind::LatencySpike { shard, .. } => shard,
        };
        if shard >= router.num_shards() {
            return Err(ServeError::Invalid(format!(
                "chaos event targets shard {shard} but the router has {}",
                router.num_shards()
            )));
        }
    }
    router.set_hedge(chaos.hedge);
    let supervisor = Arc::new(ShardSupervisor::new(Arc::clone(router), chaos.supervisor.clone()));
    let sup_handle = supervisor.start();

    let mut events = chaos.events.clone();
    events.sort_by_key(|e| e.at);
    let injection_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let t_start = Instant::now();
    let load = std::thread::scope(|scope| {
        let injector_router = Arc::clone(router);
        let injection_errors = &injection_errors;
        let events = &events;
        scope.spawn(move || {
            for e in events {
                if let Some(wait) = (t_start + e.at).checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let outcome = match e.kind {
                    ChaosKind::Kill { shard } => {
                        injector_router.shard(shard).force_down("chaos: injected kill");
                        Ok(())
                    }
                    ChaosKind::TornJournal { shard } => {
                        inject_torn_journal(&injector_router, shard)
                    }
                    ChaosKind::LatencySpike { shard, delay_ms, scans } => {
                        injector_router
                            .shard(shard)
                            .inject_scan_delay(Duration::from_millis(delay_ms), scans);
                        Ok(())
                    }
                };
                if let Err(err) = outcome {
                    injection_errors.lock().push(format!("{:?}: {err}", e.kind));
                }
            }
        });
        run(router, config)
    })?;

    // post-run: every shard must come back within the heal bound
    let t_end = Instant::now();
    let all_healthy = |r: &ShardRouter| (0..r.num_shards()).all(|i| !r.shard(i).is_down());
    while !all_healthy(router) && t_end.elapsed() < chaos.heal_bound {
        std::thread::sleep(Duration::from_millis(10));
    }
    let healed_within_bound = all_healthy(router);
    let heal_wait_ms = t_end.elapsed().as_millis().min(u64::MAX as u128) as u64;
    supervisor.shutdown();
    sup_handle.join().ok();

    // self-recall over the *original* corpus: ingested-under-chaos
    // vectors may be legitimately lost to injected corruption, but the
    // corpus the router was built from (and persisted before the run)
    // must survive every heal bit for bit
    let self_recall = strided_self_recall(router, recall_corpus, chaos.recall_probes);

    Ok(ChaosRunReport {
        load,
        supervisor: supervisor.snapshot(),
        events: supervisor.drain_events(),
        injected: chaos.events.clone(),
        healed_within_bound,
        heal_wait_ms: if healed_within_bound { heal_wait_ms } else { u64::MAX },
        self_recall,
        injection_errors: injection_errors.into_inner(),
    })
}

/// Fraction of `probes` strided samples of `corpus` whose self-query
/// returns themselves as the top hit. `corpus` must be the vectors the
/// router was built from, in insertion (= global id) order.
pub fn strided_self_recall(router: &ShardRouter, corpus: &[Vec<f32>], probes: usize) -> f64 {
    let probes = probes.min(corpus.len());
    let mut found = 0usize;
    if let Some(stride) = corpus.len().checked_div(probes) {
        let stride = stride.max(1);
        for (expected_id, v) in corpus.iter().enumerate().step_by(stride).take(probes) {
            if let Ok(r) = router.query(v.clone(), 1) {
                if r.hits.first().map(|h| h.id) == Some(expected_id) {
                    found += 1;
                }
            }
        }
    }
    if probes == 0 {
        1.0
    } else {
        found as f64 / probes as f64
    }
}

/// Parameters of a churn soak: a mixed query/ingest load where ingest
/// flows through the backpressured maintenance plane, the corpus drifts
/// on purpose, and online compaction + re-clustering must happen *while*
/// the load runs.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Maintenance-plane settings for the run (queue bounds, journal
    /// batching, compaction budget, drift thresholds).
    pub maintenance: MaintenanceConfig,
    /// Distribution shift applied to every streamed vector (component 0
    /// offset) so residual growth gives the drift detector something
    /// real to detect. `0.0` streams the stationary distribution.
    pub drift_offset: f32,
    /// How many original-corpus vectors to self-query after the run.
    pub recall_probes: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            maintenance: MaintenanceConfig::default(),
            drift_offset: 2.0,
            recall_probes: 64,
        }
    }
}

/// What a churn soak produced.
#[derive(Clone, Debug, Serialize)]
pub struct ChurnRunReport {
    /// The underlying open-loop load report (ingest latency and
    /// backpressure shed split out).
    pub load: LoadReport,
    /// Final state of the maintenance plane: lifetime compaction and
    /// re-cluster counts, queue depths, per-shard drift and epochs.
    pub maintenance: MaintainerStatus,
    /// Fraction of probed original-corpus vectors whose self-query
    /// returned themselves as the top hit after all the churn (1.0 = no
    /// acknowledged data went missing through compactions + handovers).
    pub self_recall: f64,
}

/// Runs a churn soak: wires a [`Maintainer`] onto `router`, streams the
/// configured query/ingest mix with every ingest routed through the
/// bounded queues (shed with typed backpressure, never blocking), lets
/// the background maintenance thread compact and re-cluster mid-load,
/// then drains cleanly and checks the original corpus is still fully
/// retrievable.
///
/// # Errors
/// Configuration problems only; per-operation failures, shed and
/// maintenance outcomes are all *reported*.
pub fn run_churn(
    router: &Arc<ShardRouter>,
    config: &LoadgenConfig,
    churn: &ChurnConfig,
    recall_corpus: &[Vec<f32>],
) -> Result<ChurnRunReport, ServeError> {
    let maintainer = Arc::new(Maintainer::new(Arc::clone(router), churn.maintenance));
    maintainer.start();
    let load = run_with_ingest(router, config, churn.drift_offset, &|v| maintainer.submit(v));
    maintainer.shutdown();
    let load = load?;
    let self_recall = strided_self_recall(router, recall_corpus, churn.recall_probes);
    Ok(ChurnRunReport { load, maintenance: maintainer.status(), self_recall })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::shard::ShardConfig;

    fn small_router() -> ShardRouter {
        let config = ShardConfig {
            shards: 2,
            index: IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
            cache_capacity: 64,
        };
        ShardRouter::try_build(synthetic_corpus(64, 8, 7), config).unwrap()
    }

    #[test]
    fn short_run_completes_every_scheduled_op() {
        let router = small_router();
        let config = LoadgenConfig {
            qps: 400.0,
            duration: Duration::from_millis(250),
            ingest_ratio: 0.1,
            workers: 2,
            ..Default::default()
        };
        let report = run(&router, &config).unwrap();
        assert_eq!(report.ops, 100, "400 qps × 0.25 s");
        assert_eq!(report.ops, report.queries + report.ingests);
        assert_eq!(report.errors, 0);
        assert_eq!(report.degraded, 0);
        assert!(report.p50_us <= report.p90_us && report.p90_us <= report.p99_us);
        assert!(report.max_us >= report.p99_us);
        assert!(report.sustained(0.5), "{report:?}");
        assert_eq!(report.corpus_len, 64 + report.ingests as usize);
        assert_eq!(report.scan_mode, "f32");
        assert_eq!(report.p99_f32_us, report.p99_us);
        assert_eq!(report.p99_sq8_us, 0);
    }

    #[test]
    fn report_splits_ingest_latency_and_shed_reasons() {
        let router = small_router();
        let config = LoadgenConfig {
            qps: 400.0,
            duration: Duration::from_millis(300),
            ingest_ratio: 0.3,
            workers: 2,
            ..Default::default()
        };
        let report = run(&router, &config).unwrap();
        assert_eq!(report.errors, 0, "{report:?}");
        assert!(report.ingests > 0 && report.queries > 0);
        assert!(report.p99_query_us > 0);
        assert!(report.p99_ingest_us > 0);
        assert_eq!(report.shed_overloaded, 0);
        assert_eq!(report.shed_backpressure, 0, "inline ingest never backpressures");
        // the two shed planes are part of the JSON artifact
        let json = serde_json::to_string(&report).unwrap();
        for key in ["\"p99_ingest_us\"", "\"p99_query_us\"", "\"shed_backpressure\""] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn churn_run_compacts_reclusters_and_keeps_recall() {
        let dir = TempDir::new("churn");
        let corpus = synthetic_corpus(120, 8, 13);
        let config = crate::shard::ShardConfig {
            shards: 2,
            index: IndexConfig { nlist: 4, nprobe: 4, flat_threshold: 1, kmeans_iters: 4, seed: 5 },
            cache_capacity: 64,
        };
        let router = Arc::new(ShardRouter::try_build(corpus.clone(), config).unwrap());
        router.attach_stores(&dir.0.join("idx")).unwrap();
        router.persist_all().unwrap();
        let load = LoadgenConfig {
            qps: 600.0,
            duration: Duration::from_millis(800),
            ingest_ratio: 0.5,
            workers: 2,
            ..Default::default()
        };
        let churn = ChurnConfig {
            maintenance: MaintenanceConfig {
                compact_after: 32,
                journal_batch: 8,
                drift_len_factor: 1.5,
                tick_interval: Duration::from_millis(10),
                ..MaintenanceConfig::default()
            },
            drift_offset: 2.0,
            recall_probes: 48,
        };
        let report = run_churn(&router, &load, &churn, &corpus).unwrap();
        assert_eq!(report.load.failed, 0, "churn must never produce hard failures: {report:?}");
        assert!(report.maintenance.compactions >= 1, "{:?}", report.maintenance);
        assert!(report.maintenance.reclusters >= 1, "{:?}", report.maintenance);
        assert!(
            report.maintenance.queue_depths.iter().all(|&d| d == 0),
            "clean shutdown leaves nothing queued: {report:?}"
        );
        assert!(
            (report.self_recall - 1.0).abs() < f64::EPSILON,
            "original corpus must survive compaction + handover: {report:?}"
        );
        // the report is a JSON artifact for CI — it must serialize with
        // the fields the soak asserts on
        let json = serde_json::to_string(&report).unwrap();
        for key in ["\"compactions\"", "\"reclusters\"", "\"self_recall\"", "\"p99_query_us\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        std::fs::remove_dir_all(&dir.0).ok();
    }

    #[test]
    fn quantized_run_reports_its_scan_mode() {
        let router = small_router();
        router.enable_sq8().unwrap();
        let config = LoadgenConfig {
            qps: 400.0,
            duration: Duration::from_millis(250),
            ingest_ratio: 0.1,
            workers: 2,
            ..Default::default()
        };
        let report = run(&router, &config).unwrap();
        assert_eq!(report.errors, 0);
        assert_eq!(report.scan_mode, "sq8");
        assert_eq!(report.p99_sq8_us, report.p99_us);
        assert_eq!(report.p99_f32_us, 0);
    }

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let config = LoadgenConfig {
            qps: 300.0,
            duration: Duration::from_millis(200),
            ingest_ratio: 0.2,
            workers: 2,
            ..Default::default()
        };
        let a = run(&small_router(), &config).unwrap();
        let b = run(&small_router(), &config).unwrap();
        assert_eq!(a.queries, b.queries, "same seed → same query/ingest split");
        assert_eq!(a.ingests, b.ingests);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let router = small_router();
        for bad in [
            LoadgenConfig { qps: 0.0, ..Default::default() },
            LoadgenConfig { batch_mix: vec![], ..Default::default() },
            LoadgenConfig { batch_mix: vec![0], ..Default::default() },
            LoadgenConfig { workers: 0, ..Default::default() },
            LoadgenConfig { ingest_ratio: 1.5, ..Default::default() },
            LoadgenConfig { facet_mix: -0.1, ..Default::default() },
            LoadgenConfig { facet_mix: 1.5, ..Default::default() },
        ] {
            assert!(run(&router, &bad).is_err());
        }
    }

    #[test]
    fn facet_mix_routes_queries_through_the_rerank_path() {
        let router = small_router();
        router
            .set_layout(
                crate::facet::FacetLayout::new(
                    vec!["bg".into(), "method".into(), "result".into()],
                    vec![3, 3, 2],
                )
                .unwrap(),
            )
            .unwrap();
        let config = LoadgenConfig {
            qps: 400.0,
            duration: Duration::from_millis(250),
            ingest_ratio: 0.1,
            facet_mix: 1.0,
            workers: 2,
            ..Default::default()
        };
        let report = run(&router, &config).unwrap();
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(report.faceted, report.queries, "every query carries rerank params");
        assert!(report.queries > 0);

        // and a zero mix keeps the plain path untouched
        let plain = run(&router, &LoadgenConfig { facet_mix: 0.0, ..config }).unwrap();
        assert_eq!(plain.faceted, 0);
    }

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("sem-chaos-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn stored_router(dir: &std::path::Path, corpus: &[Vec<f32>]) -> Arc<ShardRouter> {
        let config = crate::shard::ShardConfig {
            shards: 2,
            index: IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
            cache_capacity: 64,
        };
        let router = Arc::new(ShardRouter::try_build(corpus.to_vec(), config).unwrap());
        router.attach_stores(&dir.join("idx")).unwrap();
        router.persist_all().unwrap();
        router
    }

    #[test]
    fn seeded_schedule_targets_valid_shards_within_duration() {
        let duration = Duration::from_secs(10);
        let chaos = ChaosConfig::seeded(42, 2, duration);
        assert!(!chaos.events.is_empty());
        for e in &chaos.events {
            assert!(e.at < duration);
            let shard = match e.kind {
                ChaosKind::Kill { shard }
                | ChaosKind::TornJournal { shard }
                | ChaosKind::LatencySpike { shard, .. } => shard,
            };
            assert!(shard < 2);
        }
        // both kinds of victim get hit when there is more than one shard
        let kills: Vec<usize> = chaos
            .events
            .iter()
            .filter_map(|e| match e.kind {
                ChaosKind::Kill { shard } => Some(shard),
                _ => None,
            })
            .collect();
        assert_eq!(kills.len(), 2);
        assert_ne!(kills[0], kills[1]);
    }

    #[test]
    fn chaos_run_heals_and_keeps_the_original_corpus() {
        let dir = TempDir::new("mini");
        let corpus = synthetic_corpus(96, 8, 11);
        let router = stored_router(&dir.0, &corpus);
        let load = LoadgenConfig {
            qps: 300.0,
            duration: Duration::from_millis(700),
            ingest_ratio: 0.05,
            workers: 2,
            ..Default::default()
        };
        let chaos = ChaosConfig::seeded(7, 2, load.duration);
        let report = run_chaos(&router, &load, &chaos, &corpus).unwrap();

        assert!(report.injection_errors.is_empty(), "{:?}", report.injection_errors);
        assert_eq!(report.load.failed, 0, "chaos must never produce hard failures: {report:?}");
        assert!(report.supervisor.heals >= 1, "both kills should heal: {:?}", report.supervisor);
        assert!(report.healed_within_bound, "{report:?}");
        assert!(
            (report.self_recall - 1.0).abs() < f64::EPSILON,
            "original corpus must survive every heal: {report:?}"
        );
        // the report is a JSON artifact for CI — it must serialize
        let json = serde_json::to_string(&report).unwrap();
        for key in ["\"heals\"", "\"failed\"", "\"self_recall\"", "\"fault\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn chaos_rejects_out_of_range_shard() {
        let dir = TempDir::new("range");
        let corpus = synthetic_corpus(32, 8, 3);
        let router = stored_router(&dir.0, &corpus);
        let chaos = ChaosConfig {
            events: vec![ChaosEvent {
                at: Duration::from_millis(1),
                kind: ChaosKind::Kill { shard: 9 },
            }],
            ..ChaosConfig::seeded(0, 2, Duration::from_millis(100))
        };
        let load = LoadgenConfig { duration: Duration::from_millis(100), ..Default::default() };
        assert!(run_chaos(&router, &load, &chaos, &corpus).is_err());
    }
}
