//! Live maintenance: backpressured streaming ingest, online-compaction
//! scheduling and drift-triggered re-clustering.
//!
//! Serving a paper stream for months means three slow-burn problems the
//! request path cannot solve on its own:
//!
//! 1. **Ingest arrives in bursts.** Applying every submission inline
//!    (fsync per record) caps throughput at the disk; applying them
//!    asynchronously without a bound grows memory until the process dies.
//!    The [`Maintainer`] owns one bounded [`IngestQueue`] per shard:
//!    submissions are routed to the least-loaded queue, acknowledged as
//!    *queued*, and applied in journal batches by the maintenance thread.
//!    A full queue sheds with the typed
//!    [`ServeError::IngestBackpressure`] — the producer-side twin of the
//!    query path's admission control — so overload degrades into honest
//!    backpressure instead of latency collapse.
//! 2. **Journals grow without bound.** Every applied record lengthens
//!    recovery replay. Once `compact_after` records have been applied to
//!    a shard, the maintainer runs [`Shard::compact_online`]: queries
//!    never pause, ingest pauses only for the commit rename.
//! 3. **Centroids go stale.** The IVF table was trained on the corpus at
//!    build time; a drifting stream skews cell sizes and grows the mean
//!    residual until recall and tail latency rot. The drift detector
//!    compares each shard's [`DriftStats`] against the baseline captured
//!    at the last (re-)train and schedules [`Shard::recluster`] — which
//!    re-fits SQ8 scales when quantized and hands over by epoch, with
//!    in-flight queries finishing on the old table.
//!
//! Everything is observable: `serve.ingest.{queued,shed,applied,lag}`
//! count the streaming path, `serve.maint.{compactions,reclusters}` the
//! background work. Like the failure supervisor, the maintainer exposes a
//! deterministic [`Maintainer::tick`] for tests and a background thread
//! ([`Maintainer::start`]) for production.
//!
//! [`Shard::compact_online`]: crate::shard::Shard::compact_online
//! [`Shard::recluster`]: crate::shard::Shard::recluster

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use sem_obs::{Counter, Gauge, Registry};
use serde::Serialize;

use crate::error::ServeError;
use crate::index::{DriftStats, ReclusterReport};
use crate::router::ShardRouter;
use crate::shard::{CompactionReport, MaintenanceStatus};

/// Knobs for the live-maintenance loop.
#[derive(Clone, Copy, Debug)]
pub struct MaintenanceConfig {
    /// Bounded depth of each per-shard ingest queue; a submission finding
    /// its queue full is shed with [`ServeError::IngestBackpressure`].
    pub queue_capacity: usize,
    /// Suggested producer backoff carried by the shed error,
    /// milliseconds.
    pub retry_after_ms: u64,
    /// Journal appends batched per fsync while streaming (`1` keeps every
    /// ack `Synced`; larger values trade ack durability for throughput —
    /// acks come back `Buffered` and harden at the next sync).
    pub journal_batch: usize,
    /// Schedule an online compaction on a shard once this many records
    /// have been applied to it since its last compaction.
    pub compact_after: usize,
    /// Re-cluster when a shard's assignment-count skew (largest cell over
    /// mean cell) reaches this factor.
    pub drift_skew: f32,
    /// Re-cluster when a shard's mean residual exceeds the baseline
    /// captured at its last (re-)train by this factor.
    pub drift_residual_factor: f32,
    /// Re-cluster when a shard's corpus has grown by this factor over the
    /// baseline length.
    pub drift_len_factor: f32,
    /// Pause between background maintenance passes.
    pub tick_interval: Duration,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            queue_capacity: 1024,
            retry_after_ms: 20,
            journal_batch: 32,
            compact_after: 512,
            drift_skew: 3.0,
            drift_residual_factor: 1.5,
            drift_len_factor: 2.0,
            tick_interval: Duration::from_millis(50),
        }
    }
}

/// A bounded FIFO of raw (pre-normalisation) vectors waiting to be
/// applied to one shard. Push fails — never blocks, never grows — when
/// the queue is at capacity: backpressure is the caller's signal, not a
/// hidden stall.
pub struct IngestQueue {
    capacity: usize,
    items: Mutex<VecDeque<Vec<f32>>>,
}

impl IngestQueue {
    /// An empty queue bounded at `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        IngestQueue { capacity: capacity.max(1), items: Mutex::new(VecDeque::new()) }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bound push refuses past.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `vector`, or returns it to the caller when the queue is
    /// full (the shed path — nothing is dropped silently).
    pub fn try_push(&self, vector: Vec<f32>) -> Result<(), Vec<f32>> {
        let mut items = self.items.lock();
        if items.len() >= self.capacity {
            return Err(vector);
        }
        items.push_back(vector);
        Ok(())
    }

    /// Pops the oldest entry.
    pub fn pop(&self) -> Option<Vec<f32>> {
        self.items.lock().pop_front()
    }

    /// Returns `vector` to the head of the queue (a failed apply keeps
    /// its submission order; capacity is allowed to overshoot by the one
    /// in-flight entry rather than lose it).
    pub fn push_front(&self, vector: Vec<f32>) {
        self.items.lock().push_front(vector);
    }
}

/// What one [`Maintainer::drain_once`] pass did.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct DrainReport {
    /// Records applied to their shards.
    pub applied: usize,
    /// Records popped but re-queued because the apply failed (shard down
    /// or store fault — the supervisor's problem, not data loss).
    pub requeued: usize,
    /// Records still queued when the pass ended.
    pub remaining: usize,
}

/// What one [`Maintainer::tick`] did.
#[derive(Clone, Debug, Default, Serialize)]
pub struct TickReport {
    /// The drain pass that opened the tick.
    pub drain: DrainReport,
    /// Shards whose journals were compacted online this tick.
    pub compacted: Vec<usize>,
    /// Shards re-clustered this tick, with each install's outcome.
    pub reclustered: Vec<(usize, ReclusterReport)>,
}

/// Point-in-time view of the whole maintenance plane.
#[derive(Clone, Debug, Serialize)]
pub struct MaintainerStatus {
    /// Per-shard maintenance views (drift, epochs, journal tails).
    pub shards: Vec<MaintenanceStatus>,
    /// Per-shard ingest-queue depths.
    pub queue_depths: Vec<usize>,
    /// Submissions accepted into a queue, lifetime.
    pub queued: u64,
    /// Submissions shed with backpressure, lifetime.
    pub shed: u64,
    /// Records applied to shards, lifetime.
    pub applied: u64,
    /// Online compactions committed, lifetime.
    pub compactions: u64,
    /// Re-cluster installs that changed a table, lifetime.
    pub reclusters: u64,
}

/// Drift baseline captured when a shard's table was (re-)trained.
#[derive(Clone, Copy, Debug)]
struct DriftBaseline {
    len: usize,
    residual: f32,
}

struct MaintMetrics {
    queued: Arc<Counter>,
    shed: Arc<Counter>,
    applied: Arc<Counter>,
    lag: Arc<Gauge>,
    compactions: Arc<Counter>,
    reclusters: Arc<Counter>,
}

impl MaintMetrics {
    fn new(registry: &Registry) -> Self {
        MaintMetrics {
            queued: registry.counter("serve.ingest.queued"),
            shed: registry.counter("serve.ingest.shed"),
            applied: registry.counter("serve.ingest.applied"),
            lag: registry.gauge("serve.ingest.lag"),
            compactions: registry.counter("serve.maint.compactions"),
            reclusters: registry.counter("serve.maint.reclusters"),
        }
    }
}

/// The maintenance plane over a [`ShardRouter`]: owns the per-shard
/// ingest queues, applies them in journal batches, and schedules online
/// compaction and drift-triggered re-clustering. Construct with
/// [`Maintainer::new`], drive deterministically with
/// [`Maintainer::tick`] or in the background with [`Maintainer::start`].
pub struct Maintainer {
    router: Arc<ShardRouter>,
    config: MaintenanceConfig,
    queues: Vec<IngestQueue>,
    /// Records applied per shard since its last compaction — the
    /// compaction scheduler's signal (cheaper than re-reading journal
    /// tails from disk every tick).
    applied_since_compaction: Vec<AtomicU64>,
    baselines: Mutex<Vec<DriftBaseline>>,
    metrics: MaintMetrics,
    shutdown: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Maintainer {
    /// Wires the maintenance plane onto `router`: switches every shard's
    /// journal to batched appends (`config.journal_batch`) and captures
    /// the drift baselines the detector compares against.
    pub fn new(router: Arc<ShardRouter>, config: MaintenanceConfig) -> Self {
        router.set_journal_batch(config.journal_batch);
        let n = router.num_shards();
        let queues = (0..n).map(|_| IngestQueue::new(config.queue_capacity)).collect();
        let baselines = (0..n)
            .map(|i| {
                let drift = router.shard(i).drift_stats().unwrap_or(DriftStats {
                    len: 0,
                    nlist: 0,
                    skew: 1.0,
                    mean_residual: 0.0,
                });
                DriftBaseline { len: drift.len, residual: drift.mean_residual }
            })
            .collect();
        let metrics = MaintMetrics::new(&router.metrics());
        Maintainer {
            config,
            queues,
            applied_since_compaction: (0..n).map(|_| AtomicU64::new(0)).collect(),
            baselines: Mutex::new(baselines),
            metrics,
            shutdown: Arc::new(AtomicBool::new(false)),
            handle: Mutex::new(None),
            router,
        }
    }

    /// The router this maintainer serves.
    pub fn router(&self) -> &Arc<ShardRouter> {
        &self.router
    }

    /// Submits one vector to the streaming-ingest plane: routed to the
    /// least-loaded healthy shard's queue (by indexed + queued length,
    /// the same min-rule the router's inline ingest uses) and applied by
    /// a later drain pass.
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] on a bad width,
    /// [`ServeError::ShardDown`] when every shard is down, and
    /// [`ServeError::IngestBackpressure`] when the target queue is full —
    /// the producer should back off `retry_after_ms` and retry.
    pub fn submit(&self, vector: Vec<f32>) -> Result<(), ServeError> {
        if vector.len() != self.router.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: self.router.dim(),
                got: vector.len(),
            });
        }
        let n = self.queues.len();
        let target = (0..n)
            .filter(|&i| !self.router.shard(i).is_down())
            .min_by_key(|&i| (self.router.shard(i).len() + self.queues[i].len()) * n + i)
            .ok_or_else(|| ServeError::ShardDown {
                shard: 0,
                detail: "every shard is down".into(),
            })?;
        match self.queues[target].try_push(vector) {
            Ok(()) => {
                self.metrics.queued.inc();
                self.metrics.lag.set(self.queued_total() as f64);
                Ok(())
            }
            Err(_rejected) => {
                self.metrics.shed.inc();
                Err(ServeError::IngestBackpressure { retry_after_ms: self.config.retry_after_ms })
            }
        }
    }

    /// Total entries across all queues (the `serve.ingest.lag` gauge).
    pub fn queued_total(&self) -> usize {
        self.queues.iter().map(IngestQueue::len).sum()
    }

    /// One bounded drain pass: pops the entries each queue held at entry
    /// (later submissions wait for the next pass), applies them through
    /// the router in round-robin order, and re-queues — at the head, to
    /// keep order — anything whose apply failed.
    pub fn drain_once(&self) -> DrainReport {
        let budgets: Vec<usize> = self.queues.iter().map(IngestQueue::len).collect();
        let mut report = DrainReport::default();
        let n = self.queues.len();
        let mut blocked = vec![false; n];
        for round in 0..budgets.iter().copied().max().unwrap_or(0) {
            for (i, queue) in self.queues.iter().enumerate() {
                if round >= budgets[i] || blocked[i] {
                    continue;
                }
                let Some(vector) = queue.pop() else { continue };
                match self.router.ingest_vector(vector.clone()) {
                    Ok(ack) => {
                        let owner = ack.id % n;
                        self.applied_since_compaction[owner].fetch_add(1, Ordering::Relaxed);
                        self.metrics.applied.inc();
                        report.applied += 1;
                    }
                    Err(_) => {
                        // shard down or store fault: nothing was acked, so
                        // the record goes back to the head of its queue
                        // for a pass after the supervisor heals
                        queue.push_front(vector);
                        blocked[i] = true;
                        report.requeued += 1;
                    }
                }
            }
        }
        report.remaining = self.queued_total();
        self.metrics.lag.set(report.remaining as f64);
        report
    }

    /// Drains until every queue is empty or nothing can be applied any
    /// more (all remaining targets down). The shutdown path.
    pub fn drain_all(&self) -> DrainReport {
        let mut total = DrainReport::default();
        loop {
            let pass = self.drain_once();
            total.applied += pass.applied;
            total.requeued += pass.requeued;
            total.remaining = pass.remaining;
            if pass.remaining == 0 || pass.applied == 0 {
                return total;
            }
        }
    }

    /// `true` when `drift` warrants re-training `shard`'s table: the
    /// corpus moved since the baseline AND (a flat index outgrew the flat
    /// threshold, cell sizes skewed past `drift_skew`, the mean residual
    /// grew past `drift_residual_factor`× the baseline, or the corpus
    /// grew past `drift_len_factor`× the baseline length).
    fn drift_exceeded(&self, shard: usize, drift: &DriftStats) -> bool {
        let baseline = self.baselines.lock()[shard];
        if drift.len <= baseline.len {
            return false; // nothing new since the last train
        }
        let flat_threshold = self.router.config().index.flat_threshold;
        if drift.nlist == 0 {
            return drift.len > flat_threshold;
        }
        drift.skew >= self.config.drift_skew
            || drift.mean_residual > baseline.residual * self.config.drift_residual_factor + 1e-3
            || drift.len as f32 >= baseline.len.max(1) as f32 * self.config.drift_len_factor
    }

    /// Re-clusters `shard` now, regardless of drift, and re-baselines the
    /// detector from the post-install stats (so the next trigger needs
    /// fresh movement, preventing re-train loops on stubborn skew).
    ///
    /// # Errors
    /// Out-of-range ordinal or the shard being down.
    pub fn force_recluster(&self, shard: usize) -> Result<ReclusterReport, ServeError> {
        let report = self.router.recluster_shard(shard)?;
        if report.changed {
            self.metrics.reclusters.inc();
        }
        if let Ok(drift) = self.router.shard(shard).drift_stats() {
            self.baselines.lock()[shard] =
                DriftBaseline { len: drift.len, residual: drift.mean_residual };
        }
        Ok(report)
    }

    /// Online-compacts `shard` now, regardless of the applied counter,
    /// and resets its compaction budget.
    ///
    /// # Errors
    /// Out-of-range ordinal, no store, shard down, or store failures.
    pub fn force_compact(&self, shard: usize) -> Result<CompactionReport, ServeError> {
        let report = self.router.compact_shard_online(shard)?;
        self.applied_since_compaction[shard].store(0, Ordering::Relaxed);
        self.metrics.compactions.inc();
        Ok(report)
    }

    /// One deterministic maintenance pass: drain the queues, harden
    /// buffered acks, compact any shard past its applied budget, and
    /// re-cluster any shard past its drift thresholds. Individual shard
    /// failures are skipped — the supervisor owns healing; the tick
    /// retries on a later pass.
    pub fn tick(&self) -> TickReport {
        let mut report = TickReport { drain: self.drain_once(), ..TickReport::default() };
        // buffered acks harden here: one fsync per tick, not per record
        self.router.sync_stores().ok();
        for i in 0..self.queues.len() {
            if self.applied_since_compaction[i].load(Ordering::Relaxed)
                >= self.config.compact_after as u64
                && self.force_compact(i).is_ok()
            {
                report.compacted.push(i);
            }
            let Ok(drift) = self.router.shard(i).drift_stats() else { continue };
            if self.drift_exceeded(i, &drift) {
                if let Ok(r) = self.force_recluster(i) {
                    report.reclustered.push((i, r));
                }
            }
        }
        report
    }

    /// Point-in-time view of queues, counters and per-shard drift.
    pub fn status(&self) -> MaintainerStatus {
        MaintainerStatus {
            shards: self.router.maintenance_status(),
            queue_depths: self.queues.iter().map(IngestQueue::len).collect(),
            queued: self.metrics.queued.get(),
            shed: self.metrics.shed.get(),
            applied: self.metrics.applied.get(),
            compactions: self.metrics.compactions.get(),
            reclusters: self.metrics.reclusters.get(),
        }
    }

    /// Spawns the background maintenance thread: `tick` every
    /// `tick_interval` until [`Maintainer::shutdown`]. Idempotent — a
    /// second call while running is a no-op.
    pub fn start(self: &Arc<Self>) {
        let mut handle = self.handle.lock();
        if handle.is_some() {
            return;
        }
        self.shutdown.store(false, Ordering::SeqCst);
        let maintainer = Arc::clone(self);
        *handle = Some(std::thread::spawn(move || {
            while !maintainer.shutdown.load(Ordering::SeqCst) {
                maintainer.tick();
                // sleep in slices so shutdown stays responsive
                let mut remaining = maintainer.config.tick_interval;
                while !remaining.is_zero() && !maintainer.shutdown.load(Ordering::SeqCst) {
                    let slice = remaining.min(Duration::from_millis(10));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        }));
    }

    /// Stops the background thread, applies everything still queued and
    /// hardens the journals — no accepted submission is lost to a clean
    /// shutdown.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.lock().take() {
            handle.join().ok();
        }
        self.drain_all();
        self.router.sync_stores().ok();
        self.metrics.lag.set(self.queued_total() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::shard::ShardConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::path::PathBuf;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    fn flat_router(shards: usize, n: usize) -> Arc<ShardRouter> {
        let config = ShardConfig {
            shards,
            index: IndexConfig { flat_threshold: usize::MAX, ..IndexConfig::default() },
            cache_capacity: 64,
        };
        Arc::new(ShardRouter::try_build(random_vectors(n, 6, 11), config).unwrap())
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sem-maint-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn queue_bounds_and_returns_rejects() {
        let q = IngestQueue::new(2);
        assert!(q.try_push(vec![1.0]).is_ok());
        assert!(q.try_push(vec![2.0]).is_ok());
        let rejected = q.try_push(vec![3.0]).unwrap_err();
        assert_eq!(rejected, vec![3.0], "the shed vector comes back to the caller");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(vec![1.0]));
        q.push_front(vec![0.5]);
        assert_eq!(q.pop(), Some(vec![0.5]), "re-queued entries keep their order");
    }

    #[test]
    fn submit_sheds_with_typed_backpressure_when_full() {
        let router = flat_router(2, 8);
        let config = MaintenanceConfig { queue_capacity: 3, ..MaintenanceConfig::default() };
        let maintainer = Maintainer::new(router, config);
        // capacity 3 per queue × 2 queues: 6 fit, the 7th sheds
        let mut shed = 0;
        for v in random_vectors(8, 6, 21) {
            match maintainer.submit(v) {
                Ok(()) => {}
                Err(ServeError::IngestBackpressure { retry_after_ms }) => {
                    assert_eq!(retry_after_ms, config.retry_after_ms);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(shed, 2);
        let status = maintainer.status();
        assert_eq!(status.queued, 6);
        assert_eq!(status.shed, 2);
        assert!(maintainer
            .submit(vec![1.0, 2.0])
            .is_err_and(|e| matches!(e, ServeError::DimensionMismatch { .. })));
    }

    #[test]
    fn drain_applies_queued_records_to_the_router() {
        let router = flat_router(2, 10);
        let maintainer = Maintainer::new(Arc::clone(&router), MaintenanceConfig::default());
        for v in random_vectors(7, 6, 31) {
            maintainer.submit(v).unwrap();
        }
        assert_eq!(router.len(), 10, "nothing applied before the drain");
        let report = maintainer.drain_once();
        assert_eq!(report.applied, 7);
        assert_eq!(report.remaining, 0);
        assert_eq!(router.len(), 17);
        assert_eq!(maintainer.status().applied, 7);
        // queries see the streamed vectors
        assert!(!router.query(vec![0.1; 6], 3).unwrap().hits.is_empty());
    }

    #[test]
    fn tick_compacts_once_the_applied_budget_is_spent() {
        let dir = scratch("compact-budget");
        let router = flat_router(2, 10);
        router.attach_stores(&dir.join("idx")).unwrap();
        router.persist_all().unwrap();
        let config = MaintenanceConfig {
            compact_after: 8,
            journal_batch: 4,
            ..MaintenanceConfig::default()
        };
        let maintainer = Maintainer::new(Arc::clone(&router), config);
        for v in random_vectors(20, 6, 41) {
            maintainer.submit(v).unwrap();
        }
        let report = maintainer.tick();
        assert_eq!(report.drain.applied, 20);
        assert!(!report.compacted.is_empty(), "10 records per shard > compact_after 8");
        for status in router.maintenance_status() {
            if report.compacted.contains(&status.shard) {
                assert_eq!(status.journal_tail, Some(0), "compaction folded the journal");
            }
        }
        let s = maintainer.status();
        assert!(s.compactions >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drift_triggers_recluster_and_rebaselines() {
        // IVF from the start: small flat threshold, fixed nlist
        let config = ShardConfig {
            shards: 1,
            index: IndexConfig { nlist: 4, nprobe: 4, flat_threshold: 1, kmeans_iters: 4, seed: 9 },
            cache_capacity: 64,
        };
        let router = Arc::new(ShardRouter::try_build(random_vectors(60, 6, 51), config).unwrap());
        let mcfg = MaintenanceConfig { drift_len_factor: 1.5, ..MaintenanceConfig::default() };
        let maintainer = Maintainer::new(Arc::clone(&router), mcfg);
        assert!(maintainer.tick().reclustered.is_empty(), "no drift yet");
        // stream a shifted distribution to twice the baseline length
        for mut v in random_vectors(70, 6, 61) {
            v[0] += 2.0;
            maintainer.submit(v).unwrap();
        }
        let report = maintainer.tick();
        assert_eq!(report.reclustered.len(), 1, "len grew 1.5x past baseline");
        assert!(report.reclustered[0].1.changed);
        assert_eq!(router.shard(0).epoch(), 1);
        assert!(maintainer.status().reclusters >= 1);
        // re-baselined: an immediate second tick must not re-train again
        assert!(maintainer.tick().reclustered.is_empty());
    }

    #[test]
    fn background_thread_applies_submissions_and_shutdown_drains() {
        let router = flat_router(2, 10);
        let config = MaintenanceConfig {
            tick_interval: Duration::from_millis(5),
            ..MaintenanceConfig::default()
        };
        let maintainer = Arc::new(Maintainer::new(Arc::clone(&router), config));
        maintainer.start();
        maintainer.start(); // idempotent
        for v in random_vectors(30, 6, 71) {
            loop {
                match maintainer.submit(v.clone()) {
                    Ok(()) => break,
                    Err(ServeError::IngestBackpressure { .. }) => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        maintainer.shutdown();
        assert_eq!(maintainer.queued_total(), 0, "clean shutdown applies everything");
        assert_eq!(router.len(), 40);
    }
}
