//! Open-loop load generator for the sharded serving path.
//!
//! Builds a synthetic corpus, shards it behind a [`ShardRouter`], runs a
//! fixed-QPS open-loop session and prints the latency report as JSON
//! (optionally also writing it to `--json-out` for CI artifacts).
//!
//! ```text
//! loadgen --papers 100000 --dim 32 --shards 8 --qps 500 --duration-s 5 \
//!         --batch-mix 1,1,4 --ingest-ratio 0.05 --k 10 --workers 8 --seed 42
//! ```
//!
//! With `--chaos` (requires `--store-dir`) the run becomes a soak: each
//! shard is persisted to disk, a [`sem_serve::ShardSupervisor`] heals in the
//! background, and a seeded fault schedule (shard kills, journal
//! corruption, latency spikes) is injected while the load runs. The exit
//! code then reflects *hard* failures only — shed/degraded responses are
//! the expected behaviour under fault and are reported, not fatal.
//!
//! With `--churn` (requires `--store-dir`) the run becomes a live
//! maintenance soak instead: ingests stream through a
//! [`sem_serve::Maintainer`]'s bounded queues (full queues shed with
//! typed backpressure), the streamed distribution drifts on purpose, and
//! online compaction + drift-triggered re-clustering must happen while
//! the load runs. The JSON report carries the maintenance counters CI
//! asserts on (`compactions`, `reclusters`, `self_recall`).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sem_serve::{
    loadgen, ChaosConfig, ChurnConfig, HedgeConfig, IndexConfig, ShardConfig, ShardRouter,
};

struct Opts {
    papers: usize,
    dim: usize,
    nlist: usize,
    config: ShardConfig,
    load: loadgen::LoadgenConfig,
    json_out: Option<String>,
    chaos: bool,
    churn: bool,
    churn_config: ChurnConfig,
    store_dir: Option<String>,
    max_pending: usize,
    retry_after_ms: u64,
    hedge_soft_ms: u64,
    quantize: bool,
}

fn usage() -> &'static str {
    "usage: loadgen [--papers N] [--dim D] [--shards S] [--nlist L] [--qps Q] \
     [--duration-s SECS] [--batch-mix A,B,C] [--ingest-ratio R] [--facet-mix R] \
     [--k K] [--workers W] [--seed SEED] [--deadline-ms MS] [--max-pending N] \
     [--retry-after-ms MS] [--hedge-soft-ms MS] [--chaos] [--churn] \
     [--queue-capacity N] [--journal-batch N] [--compact-after N] \
     [--drift-offset F] [--drift-len-factor F] [--store-dir DIR] \
     [--quantize sq8] [--json-out PATH]"
}

fn parse_opts(argv: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        papers: 100_000,
        dim: 32,
        nlist: 0,
        config: ShardConfig::default(),
        load: loadgen::LoadgenConfig::default(),
        json_out: None,
        chaos: false,
        churn: false,
        churn_config: ChurnConfig::default(),
        store_dir: None,
        max_pending: 0,
        retry_after_ms: 100,
        hedge_soft_ms: 0,
        quantize: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let (flag, inline) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag.as_str(), None),
        };
        if flag == "--help" || flag == "-h" {
            return Err(usage().to_string());
        }
        // valueless switches
        if flag == "--chaos" {
            if inline.is_some() {
                return Err("--chaos takes no value".to_string());
            }
            opts.chaos = true;
            continue;
        }
        if flag == "--churn" {
            if inline.is_some() {
                return Err("--churn takes no value".to_string());
            }
            opts.churn = true;
            continue;
        }
        let value = match inline {
            Some(v) => v,
            None => it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))?,
        };
        let bad = |e: &dyn std::fmt::Display| format!("bad value for {flag}: {e}");
        match flag {
            "--papers" => opts.papers = value.parse().map_err(|e| bad(&e))?,
            "--dim" => opts.dim = value.parse().map_err(|e| bad(&e))?,
            "--shards" => opts.config.shards = value.parse().map_err(|e| bad(&e))?,
            "--nlist" => opts.nlist = value.parse().map_err(|e| bad(&e))?,
            "--qps" => opts.load.qps = value.parse().map_err(|e| bad(&e))?,
            "--duration-s" => {
                opts.load.duration =
                    Duration::from_secs_f64(value.parse::<f64>().map_err(|e| bad(&e))?)
            }
            "--batch-mix" => {
                opts.load.batch_mix = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| bad(&e))?
            }
            "--ingest-ratio" => opts.load.ingest_ratio = value.parse().map_err(|e| bad(&e))?,
            "--facet-mix" => opts.load.facet_mix = value.parse().map_err(|e| bad(&e))?,
            "--k" => opts.load.k = value.parse().map_err(|e| bad(&e))?,
            "--workers" => opts.load.workers = value.parse().map_err(|e| bad(&e))?,
            "--seed" => opts.load.seed = value.parse().map_err(|e| bad(&e))?,
            "--deadline-ms" => {
                opts.load.deadline =
                    Some(Duration::from_millis(value.parse().map_err(|e| bad(&e))?))
            }
            "--max-pending" => opts.max_pending = value.parse().map_err(|e| bad(&e))?,
            "--queue-capacity" => {
                opts.churn_config.maintenance.queue_capacity = value.parse().map_err(|e| bad(&e))?
            }
            "--journal-batch" => {
                opts.churn_config.maintenance.journal_batch = value.parse().map_err(|e| bad(&e))?
            }
            "--compact-after" => {
                opts.churn_config.maintenance.compact_after = value.parse().map_err(|e| bad(&e))?
            }
            "--drift-offset" => {
                opts.churn_config.drift_offset = value.parse().map_err(|e| bad(&e))?
            }
            "--drift-len-factor" => {
                opts.churn_config.maintenance.drift_len_factor =
                    value.parse().map_err(|e| bad(&e))?
            }
            "--retry-after-ms" => opts.retry_after_ms = value.parse().map_err(|e| bad(&e))?,
            "--hedge-soft-ms" => opts.hedge_soft_ms = value.parse().map_err(|e| bad(&e))?,
            "--store-dir" => opts.store_dir = Some(value),
            "--quantize" => match value.as_str() {
                "sq8" => opts.quantize = true,
                other => return Err(format!("unknown --quantize scheme {other:?} (try sq8)")),
            },
            "--json-out" => opts.json_out = Some(value),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if opts.chaos && opts.store_dir.is_none() {
        return Err("--chaos needs --store-dir (shards must persist to heal)".to_string());
    }
    if opts.churn && opts.store_dir.is_none() {
        return Err("--churn needs --store-dir (compaction needs persisted journals)".to_string());
    }
    if opts.churn && opts.chaos {
        return Err("--churn and --chaos are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = opts.config;
    if opts.nlist > 0 {
        config.index = IndexConfig { nlist: opts.nlist, ..config.index };
    }
    eprintln!(
        "loadgen: building {} × {}d corpus across {} shards …",
        opts.papers, opts.dim, config.shards
    );
    let shards = config.shards;
    let corpus = loadgen::synthetic_corpus(opts.papers, opts.dim, opts.load.seed);
    let router = match ShardRouter::try_build(corpus.clone(), config) {
        Ok(r) => Arc::new(r),
        Err(e) => {
            eprintln!("loadgen: build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.load.facet_mix > 0.0 {
        // split the dimension into three facets (bg/method/result) so the
        // mixed queries exercise real multi-facet reranking, not a
        // degenerate single-segment layout
        let third = opts.dim / 3;
        if third == 0 {
            eprintln!("loadgen: --facet-mix needs --dim >= 3");
            return ExitCode::FAILURE;
        }
        let layout = sem_serve::FacetLayout::new(
            vec!["bg".into(), "method".into(), "result".into()],
            vec![opts.dim - 2 * third, third, third],
        )
        .expect("three positive segments");
        if let Err(e) = router.set_layout(layout) {
            eprintln!("loadgen: attaching facet layout failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if opts.quantize {
        // quantize before the stores attach so persisted snapshots (and
        // any chaos-healed shard) carry the SQ8 codes
        if let Err(e) = router.enable_sq8() {
            eprintln!("loadgen: enabling SQ8 failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = &opts.store_dir {
        let base = std::path::Path::new(dir).join("idx");
        if let Err(e) = router.attach_stores(&base).and_then(|()| router.persist_all()) {
            eprintln!("loadgen: persisting shards under {dir} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if opts.max_pending > 0 {
        router.set_admission(opts.max_pending, opts.retry_after_ms);
    }
    if opts.hedge_soft_ms > 0 {
        router.set_hedge(Some(HedgeConfig {
            soft_timeout: Duration::from_millis(opts.hedge_soft_ms),
            ..Default::default()
        }));
    }
    eprintln!(
        "loadgen: open-loop {} qps for {:?} ({} workers, seed {}, {} scan{})",
        opts.load.qps,
        opts.load.duration,
        opts.load.workers,
        opts.load.seed,
        if opts.quantize { "sq8" } else { "f32" },
        if opts.chaos {
            ", chaos on"
        } else if opts.churn {
            ", churn on"
        } else {
            ""
        }
    );

    let (json, hard_failures) = if opts.churn {
        let report = match loadgen::run_churn(&router, &opts.load, &opts.churn_config, &corpus) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: churn run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut hard = report.load.failed;
        if report.maintenance.compactions == 0 {
            eprintln!("loadgen: no online compaction ran during the soak");
            hard += 1;
        }
        if report.maintenance.reclusters == 0 {
            eprintln!("loadgen: no drift re-cluster ran during the soak");
            hard += 1;
        }
        if report.self_recall < 1.0 {
            eprintln!("loadgen: original corpus lost data (self-recall {})", report.self_recall);
            hard += 1;
        }
        (serde_json::to_string_pretty(&report).expect("report serialises"), hard)
    } else if opts.chaos {
        let chaos = ChaosConfig::seeded(opts.load.seed, shards, opts.load.duration);
        let report = match loadgen::run_chaos(&router, &opts.load, &chaos, &corpus) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: chaos run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut hard = report.load.failed + report.injection_errors.len() as u64;
        if !report.healed_within_bound {
            eprintln!("loadgen: shards did not heal within bound");
            hard += 1;
        }
        if report.self_recall < 1.0 {
            eprintln!("loadgen: original corpus lost data (self-recall {})", report.self_recall);
            hard += 1;
        }
        (serde_json::to_string_pretty(&report).expect("report serialises"), hard)
    } else {
        let report = match loadgen::run(&router, &opts.load) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        (serde_json::to_string_pretty(&report).expect("report serialises"), report.errors)
    };
    println!("{json}");
    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("loadgen: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if hard_failures > 0 {
        eprintln!("loadgen: {hard_failures} hard failures");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
