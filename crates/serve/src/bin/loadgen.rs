//! Open-loop load generator for the sharded serving path.
//!
//! Builds a synthetic corpus, shards it behind a [`ShardRouter`], runs a
//! fixed-QPS open-loop session and prints the latency report as JSON
//! (optionally also writing it to `--json-out` for CI artifacts).
//!
//! ```text
//! loadgen --papers 100000 --dim 32 --shards 8 --qps 500 --duration-s 5 \
//!         --batch-mix 1,1,4 --ingest-ratio 0.05 --k 10 --workers 8 --seed 42
//! ```

use std::process::ExitCode;
use std::time::Duration;

use sem_serve::{loadgen, IndexConfig, ShardConfig, ShardRouter};

struct Opts {
    papers: usize,
    dim: usize,
    nlist: usize,
    config: ShardConfig,
    load: loadgen::LoadgenConfig,
    json_out: Option<String>,
}

fn usage() -> &'static str {
    "usage: loadgen [--papers N] [--dim D] [--shards S] [--nlist L] [--qps Q] \
     [--duration-s SECS] [--batch-mix A,B,C] [--ingest-ratio R] [--k K] \
     [--workers W] [--seed SEED] [--json-out PATH]"
}

fn parse_opts(argv: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        papers: 100_000,
        dim: 32,
        nlist: 0,
        config: ShardConfig::default(),
        load: loadgen::LoadgenConfig::default(),
        json_out: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let (flag, inline) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag.as_str(), None),
        };
        if flag == "--help" || flag == "-h" {
            return Err(usage().to_string());
        }
        let value = match inline {
            Some(v) => v,
            None => it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))?,
        };
        let bad = |e: &dyn std::fmt::Display| format!("bad value for {flag}: {e}");
        match flag {
            "--papers" => opts.papers = value.parse().map_err(|e| bad(&e))?,
            "--dim" => opts.dim = value.parse().map_err(|e| bad(&e))?,
            "--shards" => opts.config.shards = value.parse().map_err(|e| bad(&e))?,
            "--nlist" => opts.nlist = value.parse().map_err(|e| bad(&e))?,
            "--qps" => opts.load.qps = value.parse().map_err(|e| bad(&e))?,
            "--duration-s" => {
                opts.load.duration =
                    Duration::from_secs_f64(value.parse::<f64>().map_err(|e| bad(&e))?)
            }
            "--batch-mix" => {
                opts.load.batch_mix = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| bad(&e))?
            }
            "--ingest-ratio" => opts.load.ingest_ratio = value.parse().map_err(|e| bad(&e))?,
            "--k" => opts.load.k = value.parse().map_err(|e| bad(&e))?,
            "--workers" => opts.load.workers = value.parse().map_err(|e| bad(&e))?,
            "--seed" => opts.load.seed = value.parse().map_err(|e| bad(&e))?,
            "--json-out" => opts.json_out = Some(value),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = opts.config;
    if opts.nlist > 0 {
        config.index = IndexConfig { nlist: opts.nlist, ..config.index };
    }
    eprintln!(
        "loadgen: building {} × {}d corpus across {} shards …",
        opts.papers, opts.dim, config.shards
    );
    let corpus = loadgen::synthetic_corpus(opts.papers, opts.dim, opts.load.seed);
    let router = match ShardRouter::try_build(corpus, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loadgen: open-loop {} qps for {:?} ({} workers, seed {})",
        opts.load.qps, opts.load.duration, opts.load.workers, opts.load.seed
    );
    let report = match loadgen::run(&router, &opts.load) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    println!("{json}");
    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("loadgen: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.errors > 0 {
        eprintln!("loadgen: {} operations errored", report.errors);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
