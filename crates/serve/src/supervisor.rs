//! The shard supervisor: periodic health probes, trip-on-consecutive
//! failures, and automatic background healing with jittered backoff.
//!
//! **State machine.** Every shard is tracked independently:
//!
//! ```text
//!            probe ok                    probe fails
//!   Healthy ─────────▶ Healthy   Healthy ───────────▶ Suspect{1}
//!   Suspect{f} ── ok ─▶ Healthy  Suspect{f} ─ fail ─▶ Suspect{f+1}
//!   Suspect{trip_after} ──────── trip ──────────────▶ Unhealthy
//!   Unhealthy ── heal succeeds ─▶ Healthy
//!   Unhealthy ── heal fails ────▶ Unhealthy (backoff grows, jittered)
//! ```
//!
//! A *probe* is a cheap self-query (the shard searches for its own first
//! vector and must get it back as the top hit) plus, optionally, an
//! on-disk integrity check of the attached store. A shard that is already
//! `Down` fails its probe by definition. *Tripping* forces the shard
//! `Down` (so the router degrades honestly instead of serving a broken
//! index) and immediately attempts the first heal; subsequent attempts
//! are paced by [`sem_train::retry::RetryPolicy`]'s deterministic
//! jittered exponential backoff — the same policy the training watchdog
//! uses, so backoff behaviour is uniform across the system.
//!
//! **Store alarms.** A failing *store* check on a shard that still serves
//! correctly does **not** trip it: while the shard is `Ready` its
//! in-memory index is the best remaining authority, and replacing it with
//! a corrupt durable copy would destroy data. The supervisor raises a
//! store alarm (event + `serve.supervisor.store_alarms` counter) for the
//! operator instead.
//!
//! Drive the supervisor manually with [`ShardSupervisor::tick`]
//! (deterministic tests) or in the background with
//! [`ShardSupervisor::start`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sem_obs::{Counter, Registry};
use sem_train::retry::RetryPolicy;
use serde::{Serialize, Value};

use crate::router::ShardRouter;

/// Supervisor tuning knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// How often the background loop probes every shard.
    pub probe_interval: Duration,
    /// Consecutive probe failures before a shard trips to `Unhealthy`.
    pub trip_after: usize,
    /// Whether probes also verify the attached store's on-disk integrity
    /// (snapshot + journal checksums). Costs file reads per probe.
    pub check_store: bool,
    /// With `check_store`, alarm when a shard's un-compacted journal tail
    /// exceeds this many records (`None` disables the check). Like store
    /// alarms this never trips the shard — it serves fine today, but
    /// recovery replay and the next compaction pause grow with the tail.
    pub max_journal_tail: Option<usize>,
    /// Backoff pacing between heal attempts (jitter is deterministic in
    /// the policy's seed). `max_attempts` caps the *delay growth*, not
    /// the attempts — the supervisor never gives up on a shard.
    pub heal_backoff: RetryPolicy,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            probe_interval: Duration::from_millis(250),
            trip_after: 2,
            check_store: false,
            max_journal_tail: None,
            heal_backoff: RetryPolicy {
                max_attempts: 8,
                base_delay_ms: 50,
                max_delay_ms: 2_000,
                seed: 0x5eed,
            },
        }
    }
}

/// Per-shard health as the supervisor sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Last probe passed.
    Healthy,
    /// `failures` consecutive probes failed, below the trip threshold.
    Suspect {
        /// Consecutive failures so far.
        failures: usize,
    },
    /// Tripped; healing in progress with backoff.
    Unhealthy {
        /// Heal attempts made since the trip.
        heal_attempts: usize,
    },
}

// The vendored serde derive only covers unit-variant enums, so the
// struct-variant enums below serialize by hand, as tagged objects.
impl Serialize for ShardHealth {
    fn ser(&self) -> Value {
        let state = |s: &str| ("state".to_string(), Value::Str(s.to_string()));
        match self {
            ShardHealth::Healthy => Value::Obj(vec![state("healthy")]),
            ShardHealth::Suspect { failures } => Value::Obj(vec![
                state("suspect"),
                ("failures".to_string(), Value::Int(*failures as i128)),
            ]),
            ShardHealth::Unhealthy { heal_attempts } => Value::Obj(vec![
                state("unhealthy"),
                ("heal_attempts".to_string(), Value::Int(*heal_attempts as i128)),
            ]),
        }
    }
}

/// A structured supervisor event, in emission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SupervisorEvent {
    /// A probe failed (shard, consecutive-failure count).
    ProbeFailed {
        /// Shard ordinal.
        shard: usize,
        /// Consecutive failures including this one.
        failures: usize,
        /// What the probe saw.
        detail: String,
    },
    /// The shard tripped to `Unhealthy` and was forced down.
    Tripped {
        /// Shard ordinal.
        shard: usize,
    },
    /// A heal attempt failed; the next one is backoff-delayed.
    HealFailed {
        /// Shard ordinal.
        shard: usize,
        /// Attempt number (1-based).
        attempt: usize,
        /// The recovery error.
        detail: String,
    },
    /// The shard healed and is serving again.
    Healed {
        /// Shard ordinal.
        shard: usize,
        /// Heal attempts it took (1-based).
        attempts: usize,
        /// Journal records replayed during the heal.
        replayed: usize,
    },
    /// A `Ready` shard's store failed its integrity check — an operator
    /// alarm, not a trip (see the module docs).
    StoreAlarm {
        /// Shard ordinal.
        shard: usize,
    },
    /// A `Ready` shard's journal tail outgrew
    /// [`SupervisorConfig::max_journal_tail`] — compaction is overdue.
    /// An operator alarm, not a trip.
    JournalTailAlarm {
        /// Shard ordinal.
        shard: usize,
        /// Un-compacted journal records found.
        tail: usize,
        /// The configured budget it exceeded.
        max: usize,
    },
}

impl Serialize for SupervisorEvent {
    fn ser(&self) -> Value {
        let ev = |s: &str| ("event".to_string(), Value::Str(s.to_string()));
        let int = |name: &str, n: usize| (name.to_string(), Value::Int(n as i128));
        match self {
            SupervisorEvent::ProbeFailed { shard, failures, detail } => Value::Obj(vec![
                ev("probe_failed"),
                int("shard", *shard),
                int("failures", *failures),
                ("detail".to_string(), Value::Str(detail.clone())),
            ]),
            SupervisorEvent::Tripped { shard } => {
                Value::Obj(vec![ev("tripped"), int("shard", *shard)])
            }
            SupervisorEvent::HealFailed { shard, attempt, detail } => Value::Obj(vec![
                ev("heal_failed"),
                int("shard", *shard),
                int("attempt", *attempt),
                ("detail".to_string(), Value::Str(detail.clone())),
            ]),
            SupervisorEvent::Healed { shard, attempts, replayed } => Value::Obj(vec![
                ev("healed"),
                int("shard", *shard),
                int("attempts", *attempts),
                int("replayed", *replayed),
            ]),
            SupervisorEvent::StoreAlarm { shard } => {
                Value::Obj(vec![ev("store_alarm"), int("shard", *shard)])
            }
            SupervisorEvent::JournalTailAlarm { shard, tail, max } => Value::Obj(vec![
                ev("journal_tail_alarm"),
                int("shard", *shard),
                int("tail", *tail),
                int("max", *max),
            ]),
        }
    }
}

/// Point-in-time supervisor state (serialised into chaos reports).
#[derive(Clone, Debug, Serialize)]
pub struct SupervisorSnapshot {
    /// Probes run (per shard per tick).
    pub probes: u64,
    /// Shards tripped `Unhealthy`.
    pub trips: u64,
    /// Successful heals.
    pub heals: u64,
    /// Failed heal attempts.
    pub heal_failures: u64,
    /// Store-integrity alarms raised on serving shards.
    pub store_alarms: u64,
    /// Journal-tail (compaction overdue) alarms raised on serving shards.
    pub tail_alarms: u64,
    /// Current per-shard health.
    pub health: Vec<ShardHealth>,
}

/// Internal per-shard tracking: health plus the backoff clock.
struct ShardTrack {
    health: ShardHealth,
    /// Earliest instant the next heal attempt may run.
    next_heal_at: Instant,
}

/// Supervises every shard of a [`ShardRouter`]: probes, trips, heals.
pub struct ShardSupervisor {
    router: Arc<ShardRouter>,
    config: SupervisorConfig,
    tracks: Mutex<Vec<ShardTrack>>,
    events: Mutex<Vec<SupervisorEvent>>,
    probes: Arc<Counter>,
    trips: Arc<Counter>,
    heals: Arc<Counter>,
    heal_failures: Arc<Counter>,
    store_alarms: Arc<Counter>,
    tail_alarms: Arc<Counter>,
    stop: AtomicBool,
}

impl ShardSupervisor {
    /// Wraps a router for supervision. Metrics
    /// (`serve.supervisor.probes/trips/heals/...`) land in the router's
    /// registry.
    pub fn new(router: Arc<ShardRouter>, config: SupervisorConfig) -> Self {
        let registry: Arc<Registry> = router.metrics();
        let now = Instant::now();
        let tracks = (0..router.num_shards())
            .map(|_| ShardTrack { health: ShardHealth::Healthy, next_heal_at: now })
            .collect();
        ShardSupervisor {
            router,
            config,
            tracks: Mutex::new(tracks),
            events: Mutex::new(Vec::new()),
            probes: registry.counter("serve.supervisor.probes"),
            trips: registry.counter("serve.supervisor.trips"),
            heals: registry.counter("serve.supervisor.heals"),
            heal_failures: registry.counter("serve.supervisor.heal_failures"),
            store_alarms: registry.counter("serve.supervisor.store_alarms"),
            tail_alarms: registry.counter("serve.supervisor.tail_alarms"),
            stop: AtomicBool::new(false),
        }
    }

    /// Runs one supervision round over every shard: probe the healthy,
    /// advance the suspect, heal the unhealthy (respecting backoff).
    /// Deterministic given the shard states — the background loop is just
    /// this on a timer.
    pub fn tick(&self) {
        let n = self.router.num_shards();
        for i in 0..n {
            // never hold the tracks lock across a probe or heal: probes
            // scan and heals replay journals, and a concurrent snapshot()
            // must not block behind them
            let health = self.tracks.lock()[i].health;
            match health {
                ShardHealth::Healthy | ShardHealth::Suspect { .. } => self.probe_shard(i, health),
                ShardHealth::Unhealthy { heal_attempts } => {
                    if Instant::now() >= self.tracks.lock()[i].next_heal_at {
                        self.heal_shard(i, heal_attempts);
                    }
                }
            }
        }
    }

    /// Probes shard `i` and advances Healthy/Suspect, tripping at the
    /// threshold.
    fn probe_shard(&self, i: usize, health: ShardHealth) {
        self.probes.inc();
        let shard = self.router.shard(i);
        let (serving_ok, store_ok, journal_tail, detail) =
            match shard.probe(self.config.check_store) {
                Ok(report) => {
                    let detail = if report.serving_ok() {
                        String::new()
                    } else {
                        "self-query missed its own vector".to_string()
                    };
                    (report.serving_ok(), report.store_ok, report.journal_tail, detail)
                }
                Err(e) => (false, None, None, e.to_string()),
            };
        if serving_ok {
            if store_ok == Some(false) {
                // serving fine, durable copy corrupt: alarm, don't trip
                self.store_alarms.inc();
                self.push_event(SupervisorEvent::StoreAlarm { shard: i });
            }
            if let (Some(max), Some(tail)) = (self.config.max_journal_tail, journal_tail) {
                if tail > max {
                    // serving fine, compaction overdue: alarm, don't trip
                    self.tail_alarms.inc();
                    self.push_event(SupervisorEvent::JournalTailAlarm { shard: i, tail, max });
                }
            }
            self.tracks.lock()[i].health = ShardHealth::Healthy;
            return;
        }
        let failures = match health {
            ShardHealth::Suspect { failures } => failures + 1,
            _ => 1,
        };
        self.push_event(SupervisorEvent::ProbeFailed { shard: i, failures, detail });
        if failures >= self.config.trip_after {
            self.trips.inc();
            self.push_event(SupervisorEvent::Tripped { shard: i });
            // force the shard down so the router degrades honestly while
            // we heal (no-op when the shard is already down)
            shard.force_down("supervisor trip: consecutive probe failures");
            self.tracks.lock()[i].health = ShardHealth::Unhealthy { heal_attempts: 0 };
            // first heal attempt runs immediately
            self.heal_shard(i, 0);
        } else {
            self.tracks.lock()[i].health = ShardHealth::Suspect { failures };
        }
    }

    /// Runs one heal attempt against shard `i`.
    fn heal_shard(&self, i: usize, prior_attempts: usize) {
        let attempt = prior_attempts + 1;
        match self.router.recover_shard(i) {
            Ok(stats) => {
                self.heals.inc();
                self.push_event(SupervisorEvent::Healed {
                    shard: i,
                    attempts: attempt,
                    replayed: stats.replayed,
                });
                self.tracks.lock()[i].health = ShardHealth::Healthy;
            }
            Err(e) => {
                self.heal_failures.inc();
                self.push_event(SupervisorEvent::HealFailed {
                    shard: i,
                    attempt,
                    detail: e.to_string(),
                });
                // deterministic jittered exponential backoff, capped by
                // the policy's max_attempts-th delay
                let retry = attempt.min(self.config.heal_backoff.max_attempts);
                let delay = Duration::from_millis(self.config.heal_backoff.delay_ms(retry));
                let mut tracks = self.tracks.lock();
                tracks[i].health = ShardHealth::Unhealthy { heal_attempts: attempt };
                tracks[i].next_heal_at = Instant::now() + delay;
            }
        }
    }

    fn push_event(&self, event: SupervisorEvent) {
        const EVENT_CAP: usize = 4096;
        let mut events = self.events.lock();
        if events.len() < EVENT_CAP {
            events.push(event);
        }
    }

    /// Drains the structured event log (events are returned once, in
    /// emission order).
    pub fn drain_events(&self) -> Vec<SupervisorEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Current counters and per-shard health.
    pub fn snapshot(&self) -> SupervisorSnapshot {
        SupervisorSnapshot {
            probes: self.probes.get(),
            trips: self.trips.get(),
            heals: self.heals.get(),
            heal_failures: self.heal_failures.get(),
            store_alarms: self.store_alarms.get(),
            tail_alarms: self.tail_alarms.get(),
            health: self.tracks.lock().iter().map(|t| t.health).collect(),
        }
    }

    /// Spawns the background supervision loop: one [`ShardSupervisor::tick`]
    /// every `probe_interval` until [`ShardSupervisor::shutdown`]. Returns
    /// the join handle.
    pub fn start(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let sup = Arc::clone(self);
        std::thread::spawn(move || {
            while !sup.stop.load(Ordering::Acquire) {
                sup.tick();
                // sleep in small slices so shutdown is prompt even with
                // long probe intervals
                let mut remaining = sup.config.probe_interval;
                let slice = Duration::from_millis(10);
                while !remaining.is_zero() && !sup.stop.load(Ordering::Acquire) {
                    let nap = remaining.min(slice);
                    std::thread::sleep(nap);
                    remaining = remaining.saturating_sub(nap);
                }
            }
        })
    }

    /// Signals the background loop to exit (join the handle from
    /// [`ShardSupervisor::start`] afterwards).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::shard::ShardConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    /// Self-cleaning unique temp dir (no external tempfile dependency).
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("sem-sup-{tag}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn flat_config(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            index: IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
            cache_capacity: 64,
        }
    }

    fn stored_router(dir: &std::path::Path, shards: usize) -> Arc<ShardRouter> {
        let router = ShardRouter::try_build(random_vectors(60, 6, 1), flat_config(shards)).unwrap();
        router.attach_stores(&dir.join("family.snap")).unwrap();
        router.persist_all().unwrap();
        Arc::new(router)
    }

    fn fast_config(trip_after: usize) -> SupervisorConfig {
        SupervisorConfig {
            probe_interval: Duration::from_millis(5),
            trip_after,
            check_store: false,
            max_journal_tail: None,
            heal_backoff: RetryPolicy {
                max_attempts: 4,
                base_delay_ms: 0,
                max_delay_ms: 0,
                seed: 7,
            },
        }
    }

    #[test]
    fn healthy_shards_stay_healthy_across_ticks() {
        let dir = TempDir::new("healthy-ticks");
        let router = stored_router(dir.path(), 2);
        let sup = ShardSupervisor::new(router, fast_config(2));
        sup.tick();
        sup.tick();
        let snap = sup.snapshot();
        assert_eq!(snap.probes, 4);
        assert_eq!(snap.trips, 0);
        assert_eq!(snap.heals, 0);
        assert!(snap.health.iter().all(|h| *h == ShardHealth::Healthy));
        assert!(sup.drain_events().is_empty());
    }

    #[test]
    fn trip_and_heal_follow_the_state_machine() {
        let dir = TempDir::new("trip-heal");
        let router = stored_router(dir.path(), 2);
        let sup = ShardSupervisor::new(Arc::clone(&router), fast_config(2));
        router.shard(1).force_down("test kill");
        // failure 1: suspect, no trip yet
        sup.tick();
        assert_eq!(sup.snapshot().health[1], ShardHealth::Suspect { failures: 1 });
        assert!(router.shard(1).is_down());
        // failure 2: trip + immediate heal from the intact store
        sup.tick();
        let snap = sup.snapshot();
        assert_eq!(snap.trips, 1);
        assert_eq!(snap.heals, 1);
        assert_eq!(snap.health[1], ShardHealth::Healthy);
        assert!(!router.shard(1).is_down());
        // the other shard was never touched
        assert_eq!(snap.health[0], ShardHealth::Healthy);
        let events = sup.drain_events();
        assert!(matches!(events[0], SupervisorEvent::ProbeFailed { shard: 1, failures: 1, .. }));
        assert!(events.contains(&SupervisorEvent::Tripped { shard: 1 }));
        assert!(matches!(
            events.last(),
            Some(SupervisorEvent::Healed { shard: 1, attempts: 1, .. })
        ));
    }

    #[test]
    fn recovered_probe_resets_suspect_to_healthy() {
        let dir = TempDir::new("suspect-reset");
        let router = stored_router(dir.path(), 2);
        let sup = ShardSupervisor::new(Arc::clone(&router), fast_config(3));
        router.shard(0).force_down("blip");
        sup.tick();
        assert_eq!(sup.snapshot().health[0], ShardHealth::Suspect { failures: 1 });
        // operator heals it manually before the trip threshold
        router.recover_shard(0).unwrap();
        sup.tick();
        assert_eq!(sup.snapshot().health[0], ShardHealth::Healthy);
        assert_eq!(sup.snapshot().trips, 0);
    }

    #[test]
    fn heal_failure_backs_off_and_eventually_heals() {
        let _dir = TempDir::new("nostore");
        let router =
            Arc::new(ShardRouter::try_build(random_vectors(40, 6, 2), flat_config(2)).unwrap());
        // no store attached: heals fail with Invalid until one appears
        let sup = ShardSupervisor::new(Arc::clone(&router), fast_config(1));
        router.shard(0).force_down("kill");
        sup.tick(); // trip + failed heal (no store)
        let snap = sup.snapshot();
        assert_eq!(snap.trips, 1);
        assert_eq!(snap.heal_failures, 1);
        assert!(matches!(snap.health[0], ShardHealth::Unhealthy { heal_attempts: 1 }));
        // attach stores; backoff is zero in this config, so the next tick
        // heals... but recover needs a snapshot on disk first
        let dir2 = TempDir::new("late-store");
        router.attach_stores(&dir2.path().join("family.snap")).unwrap();
        // shard 0 is down, persist only writes through Ready shards —
        // write its snapshot via shard 1's path trick: persist shard 1,
        // then force shard 0's store to exist by healing from a fresh
        // snapshot written below
        let idx = crate::index::AnnIndex::build(
            random_vectors(40, 6, 2)
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(_, v)| v)
                .collect(),
            IndexConfig { flat_threshold: usize::MAX, ..Default::default() },
        );
        let mut store = crate::store::IndexStore::open(crate::router::shard_snapshot_path(
            &dir2.path().join("family.snap"),
            0,
        ));
        store.save_snapshot(&idx).unwrap();
        // delay_ms floors at 1 ms even for a zero-delay policy: wait out
        // the backoff so this tick is guaranteed to attempt the heal
        std::thread::sleep(Duration::from_millis(5));
        sup.tick();
        let snap = sup.snapshot();
        assert_eq!(snap.heals, 1, "{snap:?} events: {:?}", sup.drain_events());
        assert_eq!(snap.health[0], ShardHealth::Healthy);
        assert!(snap.heal_failures >= 1);
        let events = sup.drain_events();
        assert!(events.iter().any(|e| matches!(e, SupervisorEvent::HealFailed { .. })));
    }

    #[test]
    fn overgrown_journal_tail_alarms_without_tripping() {
        let dir = TempDir::new("tail-alarm");
        let router = stored_router(dir.path(), 2);
        let sup = ShardSupervisor::new(
            Arc::clone(&router),
            SupervisorConfig { check_store: true, max_journal_tail: Some(0), ..fast_config(2) },
        );
        // a journalled ingest leaves a 1-record tail on the owning shard
        let ack = router.ingest_vector(vec![0.5; 6]).unwrap();
        let owner = ack.id % 2;
        sup.tick();
        let snap = sup.snapshot();
        assert_eq!(snap.tail_alarms, 1, "{snap:?}");
        assert_eq!(snap.trips, 0);
        assert!(snap.health.iter().all(|h| *h == ShardHealth::Healthy));
        let events = sup.drain_events();
        assert_eq!(
            events,
            vec![SupervisorEvent::JournalTailAlarm { shard: owner, tail: 1, max: 0 }]
        );
        // online compaction folds the tail; the alarm clears
        router.compact_shard_online(owner).unwrap();
        sup.tick();
        assert_eq!(sup.snapshot().tail_alarms, 1);
        assert!(sup.drain_events().is_empty());
    }

    #[test]
    fn background_loop_heals_a_killed_shard() {
        let dir = TempDir::new("bg-loop");
        let router = stored_router(dir.path(), 2);
        let sup = Arc::new(ShardSupervisor::new(Arc::clone(&router), fast_config(1)));
        let handle = sup.start();
        router.shard(0).force_down("chaos kill");
        let t0 = Instant::now();
        while router.shard(0).is_down() && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        sup.shutdown();
        handle.join().unwrap();
        assert!(!router.shard(0).is_down(), "supervisor healed within bound");
        let snap = sup.snapshot();
        assert!(snap.trips >= 1);
        assert!(snap.heals >= 1);
    }
}
