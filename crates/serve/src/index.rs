//! IVF-flat approximate-nearest-neighbour index over paper vectors.
//!
//! Vectors are L2-normalised on entry, so the inner product is cosine
//! similarity. Large collections are partitioned into `nlist` Voronoi cells
//! by k-means (built with rayon-parallel assignment passes); a query scores
//! the `nprobe` nearest cells exhaustively. Small collections
//! (`flat_threshold` and below) skip clustering entirely and use an exact
//! brute-force scan — at that size a scan is both faster and recall-perfect.
//!
//! Insertion is incremental: a new vector is appended and routed to its
//! nearest existing centroid without touching the rest of the structure, so
//! ingesting one paper is O(`nlist · dim`), not a rebuild.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Index construction and probing parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Number of k-means cells; `0` picks `~sqrt(n)` at build time.
    pub nlist: usize,
    /// Cells scanned per query; `0` picks `max(1, ceil(nlist / 2))` — on
    /// uniformly random (worst-case, unclusterable) data that is what it
    /// takes to hold recall@10 ≥ 0.9; clustered real embeddings allow much
    /// smaller values.
    pub nprobe: usize,
    /// Collections of at most this many vectors stay un-clustered and are
    /// searched exactly.
    pub flat_threshold: usize,
    /// k-means refinement passes during build.
    pub kmeans_iters: usize,
    /// RNG seed for centroid initialisation.
    pub seed: u64,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig { nlist: 0, nprobe: 0, flat_threshold: 256, kmeans_iters: 8, seed: 0x5e7e }
    }
}

/// One search result: vector id (insertion order) and cosine similarity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hit {
    /// Position of the vector in insertion order.
    pub id: usize,
    /// Cosine similarity to the query.
    pub score: f32,
}

/// The ANN index. `centroids` empty ⇔ exact brute-force mode.
#[derive(Clone, Serialize, Deserialize)]
pub struct AnnIndex {
    config: IndexConfig,
    dim: usize,
    vectors: Vec<Vec<f32>>,
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<usize>>,
    generation: u64,
}

/// L2-normalises in place; an all-zero vector is left as-is.
fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Index of the centroid nearest to `v` (highest inner product).
fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_score = f32::NEG_INFINITY;
    for (c, cen) in centroids.iter().enumerate() {
        let s = dot(cen, v);
        if s > best_score {
            best_score = s;
            best = c;
        }
    }
    best
}

impl AnnIndex {
    /// Builds an index over `vectors` (ids are assigned in order).
    ///
    /// # Panics
    /// Panics when `vectors` is empty or widths are inconsistent.
    pub fn build(mut vectors: Vec<Vec<f32>>, config: IndexConfig) -> Self {
        assert!(!vectors.is_empty(), "cannot index an empty collection");
        let dim = vectors[0].len();
        assert!(vectors.iter().all(|v| v.len() == dim), "inconsistent vector widths");
        for v in &mut vectors {
            normalize(v);
        }
        let n = vectors.len();
        let (centroids, lists) = if n <= config.flat_threshold {
            (Vec::new(), Vec::new())
        } else {
            let nlist =
                if config.nlist == 0 { (n as f64).sqrt().round() as usize } else { config.nlist }
                    .clamp(1, n);
            Self::kmeans(&vectors, nlist, config.kmeans_iters, config.seed)
        };
        AnnIndex { config, dim, vectors, centroids, lists, generation: 0 }
    }

    /// Spherical k-means: parallel assignment, host-side centroid update.
    /// Returns `(centroids, lists)`.
    fn kmeans(
        vectors: &[Vec<f32>],
        nlist: usize,
        iters: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<Vec<usize>>) {
        let n = vectors.len();
        let dim = vectors[0].len();
        let mut rng = StdRng::seed_from_u64(seed);
        // seed centroids from distinct data points
        let mut picked = Vec::with_capacity(nlist);
        while picked.len() < nlist {
            let i = rng.gen_range(0..n);
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        let mut centroids: Vec<Vec<f32>> = picked.iter().map(|&i| vectors[i].clone()).collect();
        let mut assign: Vec<usize> = Vec::new();
        for _ in 0..iters {
            assign =
                (0..n).into_par_iter().map(|i| nearest_centroid(&centroids, &vectors[i])).collect();
            let mut sums = vec![vec![0.0f32; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (i, &c) in assign.iter().enumerate() {
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(&vectors[i]) {
                    *s += v;
                }
            }
            for (c, sum) in sums.iter_mut().enumerate() {
                if counts[c] == 0 {
                    // re-seed a dead cell from a random point so every
                    // centroid keeps partitioning the data
                    *sum = vectors[rng.gen_range(0..n)].clone();
                } else {
                    normalize(sum);
                }
            }
            centroids = sums;
        }
        let mut lists = vec![Vec::new(); nlist];
        for (i, &c) in assign.iter().enumerate() {
            lists[c].push(i);
        }
        (centroids, lists)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index holds no vectors (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Vector width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when the index is in exact brute-force mode.
    pub fn is_flat(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Monotone counter bumped on every [`AnnIndex::insert`]; cached results
    /// from an older generation may be stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The stored (normalised) vector for `id`.
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.vectors[id]
    }

    /// Appends one vector without rebuilding; returns its id. In IVF mode
    /// the vector joins its nearest centroid's cell.
    ///
    /// # Panics
    /// Panics on a width mismatch.
    pub fn insert(&mut self, mut vector: Vec<f32>) -> usize {
        assert_eq!(vector.len(), self.dim, "vector width mismatch");
        normalize(&mut vector);
        let id = self.vectors.len();
        if !self.centroids.is_empty() {
            let c = nearest_centroid(&self.centroids, &vector);
            self.lists[c].push(id);
        }
        self.vectors.push(vector);
        self.generation += 1;
        id
    }

    /// Top-`k` most similar vectors, best first (score desc, id asc on
    /// ties).
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        let mut q = query.to_vec();
        normalize(&mut q);
        let mut scored: Vec<Hit> = if self.is_flat() {
            (0..self.vectors.len())
                .map(|id| Hit { id, score: dot(&self.vectors[id], &q) })
                .collect()
        } else {
            let nprobe = if self.config.nprobe == 0 {
                self.centroids.len().div_ceil(2)
            } else {
                self.config.nprobe
            }
            .clamp(1, self.centroids.len());
            let mut cells: Vec<(f32, usize)> =
                self.centroids.iter().enumerate().map(|(c, cen)| (dot(cen, &q), c)).collect();
            cells.sort_by(|a, b| b.0.total_cmp(&a.0));
            cells
                .iter()
                .take(nprobe)
                .flat_map(|&(_, c)| self.lists[c].iter())
                .map(|&id| Hit { id, score: dot(&self.vectors[id], &q) })
                .collect()
        };
        let k = k.min(scored.len());
        if k < scored.len() {
            scored.select_nth_unstable_by(k, |a, b| {
                b.score.total_cmp(&a.score).then(a.id.cmp(&b.id))
            });
            scored.truncate(k);
        }
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        scored
    }

    /// Searches many queries rayon-parallel; result `i` answers query `i`.
    pub fn search_batch(&self, queries: &[(Vec<f32>, usize)]) -> Vec<Vec<Hit>> {
        queries.par_iter().map(|(q, k)| self.search(q, *k)).collect()
    }

    /// Exact top-`k` by full scan regardless of mode (recall reference).
    pub fn search_exact(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        let mut q = query.to_vec();
        normalize(&mut q);
        let mut scored: Vec<Hit> = (0..self.vectors.len())
            .map(|id| Hit { id, score: dot(&self.vectors[id], &q) })
            .collect();
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        scored.truncate(k);
        scored
    }

    /// Serialises the whole index to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("index serialises")
    }

    /// Restores an index from [`AnnIndex::to_json`] output.
    ///
    /// # Errors
    /// Returns an error for malformed JSON or internally inconsistent
    /// shapes.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let idx: AnnIndex = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if idx.vectors.is_empty() {
            return Err("index holds no vectors".into());
        }
        if idx.vectors.iter().any(|v| v.len() != idx.dim)
            || idx.centroids.iter().any(|c| c.len() != idx.dim)
        {
            return Err("inconsistent vector widths".into());
        }
        if idx.centroids.len() != idx.lists.len() {
            return Err("centroid/list count mismatch".into());
        }
        let n = idx.vectors.len();
        if idx.lists.iter().flatten().any(|&id| id >= n) {
            return Err("cell entry out of range".into());
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    #[test]
    fn small_collections_stay_flat_and_exact() {
        let idx = AnnIndex::build(random_vectors(100, 8, 1), IndexConfig::default());
        assert!(idx.is_flat());
        let q = idx.vector(42).to_vec();
        let hits = idx.search(&q, 5);
        assert_eq!(hits[0].id, 42);
        assert!((hits[0].score - 1.0).abs() < 1e-5);
        assert_eq!(hits, idx.search_exact(&q, 5));
    }

    #[test]
    fn large_collections_cluster_and_self_query_wins() {
        let idx = AnnIndex::build(random_vectors(1200, 16, 2), IndexConfig::default());
        assert!(!idx.is_flat());
        for probe in [0usize, 7, 300, 1199] {
            let q = idx.vector(probe).to_vec();
            let hits = idx.search(&q, 3);
            assert_eq!(hits[0].id, probe, "self-query must return itself first");
        }
    }

    #[test]
    fn hits_are_sorted_and_truncated() {
        let idx = AnnIndex::build(random_vectors(50, 6, 3), IndexConfig::default());
        let hits = idx.search(&random_vectors(1, 6, 4)[0], 10);
        assert_eq!(hits.len(), 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // k larger than the collection clamps
        assert_eq!(idx.search(idx.vector(0), 500).len(), 50);
    }

    #[test]
    fn insert_routes_without_rebuild() {
        let mut idx = AnnIndex::build(random_vectors(800, 12, 5), IndexConfig::default());
        let g0 = idx.generation();
        let v = random_vectors(1, 12, 6).pop().unwrap();
        let id = idx.insert(v.clone());
        assert_eq!(id, 800);
        assert_eq!(idx.len(), 801);
        assert_eq!(idx.generation(), g0 + 1);
        let hits = idx.search(&v, 1);
        assert_eq!(hits[0].id, id);
    }

    #[test]
    fn batch_matches_individual_searches() {
        let idx = AnnIndex::build(random_vectors(600, 10, 7), IndexConfig::default());
        let queries: Vec<(Vec<f32>, usize)> =
            random_vectors(9, 10, 8).into_iter().map(|q| (q, 4)).collect();
        let batch = idx.search_batch(&queries);
        for (i, (q, k)) in queries.iter().enumerate() {
            assert_eq!(batch[i], idx.search(q, *k));
        }
    }

    #[test]
    fn json_roundtrip_preserves_results() {
        let mut idx = AnnIndex::build(random_vectors(500, 8, 9), IndexConfig::default());
        idx.insert(random_vectors(1, 8, 10).pop().unwrap());
        let q = random_vectors(1, 8, 11).pop().unwrap();
        let restored = AnnIndex::from_json(&idx.to_json()).unwrap();
        assert_eq!(restored.search(&q, 7), idx.search(&q, 7));
        assert_eq!(restored.generation(), idx.generation());
        assert!(AnnIndex::from_json("nonsense").is_err());
    }

    #[test]
    fn recall_on_clustered_data_is_high() {
        // random uniform is the worst case for IVF; still, the default
        // config must find the bulk of true neighbours
        let vectors = random_vectors(2000, 12, 12);
        let idx = AnnIndex::build(vectors, IndexConfig::default());
        let queries = random_vectors(20, 12, 13);
        let mut overlap = 0usize;
        for q in &queries {
            let ann: Vec<usize> = idx.search(q, 10).iter().map(|h| h.id).collect();
            let exact: Vec<usize> = idx.search_exact(q, 10).iter().map(|h| h.id).collect();
            overlap += exact.iter().filter(|id| ann.contains(id)).count();
        }
        let recall = overlap as f64 / (10 * queries.len()) as f64;
        assert!(recall >= 0.9, "recall@10 {recall}");
    }
}
