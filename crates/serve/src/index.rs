//! IVF-flat approximate-nearest-neighbour index over paper vectors.
//!
//! Vectors are L2-normalised on entry, so the inner product is cosine
//! similarity. Large collections are partitioned into `nlist` Voronoi cells
//! by spherical k-means — the shared trainer in [`sem_tensor::kmeans`]
//! driven with a rayon-parallel assignment pass; a query scores the
//! `nprobe` nearest cells exhaustively. Small collections
//! (`flat_threshold` and below) skip clustering entirely and use an exact
//! brute-force scan — at that size a scan is both faster and recall-perfect.
//!
//! **Online re-clustering.** The cell structure is trained once at build
//! time, but a churning corpus drifts away from it: cells fill unevenly
//! (assignment-count skew) and vectors sit further from their centroids
//! (mean residual growth). [`AnnIndex::drift_stats`] exposes both signals;
//! [`AnnIndex::train_recluster`] re-trains the centroid table *off-line*
//! against a point-in-time clone and [`AnnIndex::install_recluster`]
//! swaps it in, routing any vectors inserted since training to their
//! nearest new centroid and re-fitting SQ8 scales when quantized. Because
//! build and re-train share one k-means implementation, re-clustering an
//! undrifted index with the build seed reproduces the centroid table
//! bit-for-bit — the install is then a no-op (generation unchanged), the
//! property the maintenance layer's handover test pins.
//!
//! Insertion is incremental: a new vector is appended and routed to its
//! nearest existing centroid without touching the rest of the structure, so
//! ingesting one paper is O(`nlist · dim`), not a rebuild.
//!
//! **Quantized scan mode.** [`AnnIndex::enable_sq8`] attaches per-facet
//! SQ8 codes (see [`sem_tensor::quant`]): stage-0 candidate generation
//! quantizes the query once and scans 1-byte codes with the symmetric
//! u8·u8 integer distance (4× less memory traffic and a wider integer
//! MAC than the f32 scan), keeps the top `C` candidates
//! ([`AnnIndex::rescore_depth`]) and rescores exactly those in f32, so
//! the final top-k scores are exact dot products — quantization can only
//! cost recall (a true neighbour missing from the top `C`), never score
//! fidelity. The f32 vectors are retained for the rescore and for
//! stage-2 reranking, which is untouched.

use std::time::Instant;

use rayon::prelude::*;
use sem_tensor::kmeans as tkmeans;
use sem_tensor::quant::{self, Sq8Scale};
use serde::{Deserialize, Serialize};

use crate::error::ServeError;
use crate::facet::{FacetChecksum, FacetLayout};

/// Vectors scanned between deadline checks in flat (brute-force) mode —
/// coarse enough that the `Instant::now` calls cost nothing against the
/// scan itself, fine enough that an exhausted budget stops within
/// microseconds.
const FLAT_DEADLINE_STRIDE: usize = 1024;

/// Floor on the exact-rescore pool of a quantized search: stage 0 keeps
/// `max(DEFAULT_RESCORE, 4·k)` code-scored candidates for the f32
/// rescore. At SQ8's error scale this holds recall@10 ≥ 0.95 on
/// worst-case (uniform random) corpora while keeping the rescore two
/// orders of magnitude cheaper than the scan it replaces.
pub const DEFAULT_RESCORE: usize = 128;

/// Index construction and probing parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Number of k-means cells; `0` picks `~sqrt(n)` at build time.
    pub nlist: usize,
    /// Cells scanned per query; `0` picks `max(1, ceil(nlist / 2))` — on
    /// uniformly random (worst-case, unclusterable) data that is what it
    /// takes to hold recall@10 ≥ 0.9; clustered real embeddings allow much
    /// smaller values.
    pub nprobe: usize,
    /// Collections of at most this many vectors stay un-clustered and are
    /// searched exactly.
    pub flat_threshold: usize,
    /// k-means refinement passes during build.
    pub kmeans_iters: usize,
    /// RNG seed for centroid initialisation.
    pub seed: u64,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig { nlist: 0, nprobe: 0, flat_threshold: 256, kmeans_iters: 8, seed: 0x5e7e }
    }
}

/// One search result: vector id (insertion order) and cosine similarity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hit {
    /// Position of the vector in insertion order.
    pub id: usize,
    /// Cosine similarity to the query.
    pub score: f32,
}

/// The ANN index. `centroids` empty ⇔ exact brute-force mode.
///
/// `layout` is facet metadata over the *same* flat vectors — the fused
/// scan never looks at it, so attaching a layout cannot change stage-1
/// results. `None` means "one fused segment" (what v1 snapshots and
/// plain corpora carry); serde tolerates the field's absence, which is
/// the v1→v2 read-path migration. `quant` follows the same pattern for
/// v3: SQ8 codes + scales when quantized scan mode is enabled, absent on
/// v1/v2 payloads and unquantized indexes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnnIndex {
    config: IndexConfig,
    dim: usize,
    vectors: Vec<Vec<f32>>,
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<usize>>,
    generation: u64,
    layout: Option<FacetLayout>,
    quant: Option<Sq8Data>,
}

/// SQ8 sidecar of a quantized index: the per-segment scales fitted at
/// [`AnnIndex::enable_sq8`] time, one code byte per stored element
/// (row-major, parallel to `vectors`), and the rescore-pool floor.
/// Segment geometry is frozen at fit time (`widths`), so later layout
/// changes cannot desynchronise code boundaries.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Sq8Data {
    widths: Vec<usize>,
    scales: Vec<Sq8Scale>,
    codes: Vec<u8>,
    rescore: usize,
}

impl Sq8Data {
    fn codes_of(&self, id: usize, dim: usize) -> &[u8] {
        &self.codes[id * dim..(id + 1) * dim]
    }
}

/// Point-in-time clustering health of an index, the signals the
/// maintenance layer's drift detector keys re-clustering off. Flat
/// indexes report the neutral values (`skew` 1.0, `mean_residual` 0.0):
/// a brute-force scan has no cluster structure to drift.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftStats {
    /// Vectors indexed when the stats were taken.
    pub len: usize,
    /// IVF cells (0 in flat mode).
    pub nlist: usize,
    /// Assignment-count skew: largest cell size over the mean cell size.
    /// 1.0 is perfectly balanced; growth means queries probing the hot
    /// cells scan ever more of the corpus.
    pub skew: f32,
    /// Mean `1 − ⟨v, centroid(v)⟩` over all vectors — how far the corpus
    /// sits from the centroid table trained for it.
    pub mean_residual: f32,
}

/// A re-trained centroid table produced by [`AnnIndex::train_recluster`]
/// against a point-in-time clone, waiting to be swapped in with
/// [`AnnIndex::install_recluster`]. Training is the expensive part and
/// holds no locks; the plan carries the length it was trained at so the
/// install can route vectors inserted in the meantime.
#[derive(Clone, Debug)]
pub struct ReclusterPlan {
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<usize>>,
    trained_len: usize,
}

impl ReclusterPlan {
    /// Vectors the plan was trained over.
    pub fn trained_len(&self) -> usize {
        self.trained_len
    }

    /// Cells in the re-trained table (0 when the plan keeps flat mode).
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }
}

/// Outcome of [`AnnIndex::install_recluster`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReclusterReport {
    /// `false` when the re-trained table was bit-identical to the live one
    /// and the install was skipped entirely (zero drift: generation and
    /// caches stay valid).
    pub changed: bool,
    /// Cells after the install (0 in flat mode).
    pub nlist: usize,
    /// Vectors indexed at install time.
    pub len: usize,
    /// Vectors that were inserted after training and had to be routed to
    /// their nearest new centroid during the install.
    pub routed_tail: usize,
}

/// L2-normalises in place; an all-zero vector is left as-is.
fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Index of the centroid nearest to `v` (highest inner product).
fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_score = f32::NEG_INFINITY;
    for (c, cen) in centroids.iter().enumerate() {
        let s = dot(cen, v);
        if s > best_score {
            best_score = s;
            best = c;
        }
    }
    best
}

/// Resolved cell count for `n` vectors under `config`: `~sqrt(n)` when
/// `nlist` is 0, clamped to `1..=n`.
fn resolved_nlist(config: &IndexConfig, n: usize) -> usize {
    if config.nlist == 0 { (n as f64).sqrt().round() as usize } else { config.nlist }.clamp(1, n)
}

/// Keeps the best `k` hits in `scored`, sorted score-desc (id asc on ties).
fn top_k(scored: &mut Vec<Hit>, k: usize) {
    let k = k.min(scored.len());
    if k < scored.len() {
        scored.select_nth_unstable_by(k, |a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        scored.truncate(k);
    }
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
}

impl AnnIndex {
    /// Builds an index over `vectors` (ids are assigned in order).
    ///
    /// # Panics
    /// Panics when `vectors` is empty or widths are inconsistent; see
    /// [`AnnIndex::try_build`] for the non-panicking form.
    pub fn build(vectors: Vec<Vec<f32>>, config: IndexConfig) -> Self {
        match Self::try_build(vectors, config) {
            Ok(idx) => idx,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`AnnIndex::build`]: rejects empty collections and
    /// inconsistent widths with typed errors instead of panicking.
    ///
    /// # Errors
    /// [`ServeError::EmptyIndex`] and [`ServeError::DimensionMismatch`].
    pub fn try_build(mut vectors: Vec<Vec<f32>>, config: IndexConfig) -> Result<Self, ServeError> {
        if vectors.is_empty() {
            return Err(ServeError::EmptyIndex);
        }
        let dim = vectors[0].len();
        if let Some(bad) = vectors.iter().find(|v| v.len() != dim) {
            return Err(ServeError::DimensionMismatch { expected: dim, got: bad.len() });
        }
        for v in &mut vectors {
            normalize(v);
        }
        let n = vectors.len();
        let (centroids, lists) = if n <= config.flat_threshold {
            (Vec::new(), Vec::new())
        } else {
            let nlist = resolved_nlist(&config, n);
            Self::kmeans(&vectors, nlist, config.kmeans_iters, config.seed)
        };
        Ok(AnnIndex {
            config,
            dim,
            vectors,
            centroids,
            lists,
            generation: 0,
            layout: None,
            quant: None,
        })
    }

    /// Spherical k-means via the shared trainer in [`sem_tensor::kmeans`],
    /// with the assignment pass run rayon-parallel (per-point assignment is
    /// independent, so the result is bit-identical to the serial trainer).
    /// Returns `(centroids, lists)`.
    fn kmeans(
        vectors: &[Vec<f32>],
        nlist: usize,
        iters: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<Vec<usize>>) {
        let model = tkmeans::spherical_kmeans_with(vectors, nlist, iters, seed, |centroids| {
            (0..vectors.len())
                .into_par_iter()
                .map(|i| nearest_centroid(centroids, &vectors[i]))
                .collect()
        });
        let mut lists = vec![Vec::new(); nlist];
        for (i, &c) in model.assignments.iter().enumerate() {
            lists[c].push(i);
        }
        (model.centroids, lists)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index holds no vectors (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Vector width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when the index is in exact brute-force mode.
    pub fn is_flat(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Number of IVF cells (0 in flat mode).
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Monotone counter bumped on every [`AnnIndex::insert`]; cached results
    /// from an older generation may be stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The stored (normalised) vector for `id`.
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.vectors[id]
    }

    /// Attaches a facet layout (builder style). Pure metadata: stage-1
    /// search results are unchanged, stage-2 rerank gains per-facet
    /// segment boundaries.
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] when the layout's total width
    /// differs from the index width.
    pub fn with_layout(mut self, layout: FacetLayout) -> Result<Self, ServeError> {
        self.set_layout(layout)?;
        Ok(self)
    }

    /// In-place form of [`AnnIndex::with_layout`].
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] when the layout's total width
    /// differs from the index width.
    pub fn set_layout(&mut self, layout: FacetLayout) -> Result<(), ServeError> {
        if layout.dim() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, got: layout.dim() });
        }
        self.layout = Some(layout);
        Ok(())
    }

    /// The facet layout: the stored one, or the single-segment fused
    /// fallback for indexes (and migrated v1 stores) without facets.
    pub fn layout(&self) -> FacetLayout {
        self.layout.clone().unwrap_or_else(|| FacetLayout::fused(self.dim))
    }

    /// `true` when a multi-facet layout is attached.
    pub fn has_facets(&self) -> bool {
        self.layout.is_some()
    }

    /// Per-facet segment checksums: for each facet, the CRC32 of that
    /// segment's little-endian bytes across all vectors in insertion
    /// order. `index verify` reports these per shard so corruption can be
    /// localised to a facet, not just a payload.
    pub fn facet_checksums(&self) -> Vec<FacetChecksum> {
        let layout = self.layout();
        (0..layout.len())
            .map(|j| {
                let range = layout.range(j);
                let mut bytes = Vec::with_capacity(self.vectors.len() * range.len() * 4);
                for v in &self.vectors {
                    for x in &v[range.clone()] {
                        bytes.extend_from_slice(&x.to_le_bytes());
                    }
                }
                FacetChecksum {
                    name: layout.names()[j].clone(),
                    dim: range.len(),
                    crc32: crate::store::crc32(&bytes),
                }
            })
            .collect()
    }

    /// Enables SQ8 quantized scan mode: fits one affine scale per facet
    /// segment of the current [`AnnIndex::layout`] over the stored
    /// (normalised) vectors and codes every element as one byte. Stage-0
    /// scans run over the codes from here on, with the top
    /// [`AnnIndex::rescore_depth`] candidates rescored in exact f32.
    /// Idempotent: calling again re-fits over the current vectors.
    ///
    /// Enable *after* attaching a facet layout so the scales are
    /// per-facet; the code geometry is frozen at fit time.
    ///
    /// # Errors
    /// [`ServeError::Invalid`] when a stored value is non-finite.
    pub fn enable_sq8(&mut self) -> Result<(), ServeError> {
        let widths = self.layout().dims().to_vec();
        let scales = quant::fit_scales(self.vectors.iter().map(|v| v.as_slice()), &widths)
            .map_err(ServeError::Invalid)?;
        let mut codes = Vec::with_capacity(self.vectors.len() * self.dim);
        let mut buf = Vec::new();
        for v in &self.vectors {
            quant::quantize_into(v, &widths, &scales, &mut buf);
            codes.extend_from_slice(&buf);
        }
        self.quant = Some(Sq8Data { widths, scales, codes, rescore: DEFAULT_RESCORE });
        Ok(())
    }

    /// Builder form of [`AnnIndex::enable_sq8`].
    ///
    /// # Errors
    /// [`ServeError::Invalid`] when a stored value is non-finite.
    pub fn with_sq8(mut self) -> Result<Self, ServeError> {
        self.enable_sq8()?;
        Ok(self)
    }

    /// `true` when SQ8 quantized scan mode is enabled.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Exact-rescore pool size of a quantized top-`k` search:
    /// `max(DEFAULT_RESCORE, 4·k)`, clamped to the collection. `0` when
    /// unquantized (no rescore stage runs).
    pub fn rescore_depth(&self, k: usize) -> usize {
        match &self.quant {
            Some(sq) => sq.rescore.max(4 * k).min(self.vectors.len()),
            None => 0,
        }
    }

    /// Bytes held by the SQ8 sidecar (codes + scales + geometry), or
    /// `None` when unquantized. Compare against
    /// [`AnnIndex::vector_bytes`] for the ~4× memory story: serving the
    /// scan needs the codes, while the f32 vectors back the exact
    /// rescore.
    pub fn quant_bytes(&self) -> Option<usize> {
        self.quant.as_ref().map(|sq| sq.codes.len() + sq.scales.len() * 8 + sq.widths.len() * 8)
    }

    /// Bytes held by the stored f32 vectors.
    pub fn vector_bytes(&self) -> usize {
        self.vectors.len() * self.dim * 4
    }

    /// Per-segment CRC32 checksums over the SQ8 code bytes (insertion
    /// order), mirroring [`AnnIndex::facet_checksums`] for the quantized
    /// sidecar. Empty when unquantized. `index verify` reports these so
    /// code corruption can be localised to a facet segment.
    pub fn quant_checksums(&self) -> Vec<FacetChecksum> {
        let Some(sq) = &self.quant else { return Vec::new() };
        let layout = self.layout();
        let names: Vec<String> = if layout.dims() == sq.widths.as_slice() {
            layout.names().to_vec()
        } else {
            (0..sq.widths.len()).map(|j| format!("seg{j}")).collect()
        };
        let mut start = 0usize;
        sq.widths
            .iter()
            .zip(names)
            .map(|(&w, name)| {
                let mut bytes = Vec::with_capacity(self.vectors.len() * w);
                for id in 0..self.vectors.len() {
                    bytes.extend_from_slice(
                        &sq.codes[id * self.dim + start..id * self.dim + start + w],
                    );
                }
                start += w;
                FacetChecksum { name, dim: w, crc32: crate::store::crc32(&bytes) }
            })
            .collect()
    }

    /// Appends one vector without rebuilding; returns its id. In IVF mode
    /// the vector joins its nearest centroid's cell.
    ///
    /// # Panics
    /// Panics on a width mismatch; see [`AnnIndex::try_insert`] for the
    /// non-panicking form.
    pub fn insert(&mut self, vector: Vec<f32>) -> usize {
        match self.try_insert(vector) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`AnnIndex::insert`].
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] on a width mismatch.
    pub fn try_insert(&mut self, mut vector: Vec<f32>) -> Result<usize, ServeError> {
        if vector.len() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, got: vector.len() });
        }
        normalize(&mut vector);
        let id = self.vectors.len();
        if !self.centroids.is_empty() {
            let c = nearest_centroid(&self.centroids, &vector);
            self.lists[c].push(id);
        }
        if let Some(sq) = &mut self.quant {
            // code the newcomer under the frozen corpus scales; values
            // outside the fitted range saturate, and the exact rescore
            // absorbs the resulting stage-0 score error
            let mut buf = Vec::new();
            quant::quantize_into(&vector, &sq.widths, &sq.scales, &mut buf);
            sq.codes.extend_from_slice(&buf);
        }
        self.vectors.push(vector);
        self.generation += 1;
        Ok(id)
    }

    /// The query prepared for the symmetric u8·u8 stage-0 scan (quantized
    /// under the corpus scales, query-side terms folded), or `None` when
    /// unquantized. Computed once per search.
    fn quant_query(&self, q: &[f32]) -> Option<quant::Sq8Query> {
        self.quant.as_ref().map(|sq| quant::Sq8Query::prepare(q, &sq.widths, &sq.scales))
    }

    /// Stage-0 score of vector `id` against the normalised query: the
    /// symmetric code distance when quantized (`prepared` from
    /// [`AnnIndex::quant_query`]), the exact f32 dot otherwise.
    #[inline]
    fn stage0_score(&self, id: usize, q: &[f32], prepared: Option<&quant::Sq8Query>) -> f32 {
        match (&self.quant, prepared) {
            (Some(sq), Some(prepared)) => prepared.score(sq.codes_of(id, self.dim)),
            _ => dot(&self.vectors[id], q),
        }
    }

    /// Stage-0 scores for the contiguous id range `start..end`, appended
    /// to `scored`. Dispatches once per range instead of once per row:
    /// the quantized arm walks the code matrix sequentially, which is
    /// the access pattern the SSE2 kernel's speedup lives on.
    fn stage0_scan_range(
        &self,
        scored: &mut Vec<Hit>,
        start: usize,
        end: usize,
        q: &[f32],
        prepared: Option<&quant::Sq8Query>,
    ) {
        match (&self.quant, prepared) {
            (Some(sq), Some(prepared)) => scored.extend(
                sq.codes[start * self.dim..end * self.dim]
                    .chunks_exact(self.dim)
                    .enumerate()
                    .map(|(off, row)| Hit { id: start + off, score: prepared.score(row) }),
            ),
            _ => scored.extend((start..end).map(|id| Hit { id, score: dot(&self.vectors[id], q) })),
        }
    }

    /// Exact-rescore stage of a quantized search: keep the top
    /// [`AnnIndex::rescore_depth`] code-scored candidates and replace
    /// their scores with exact f32 dots, so whatever the caller's final
    /// `top_k` keeps is exact-rescore-backed. No-op when unquantized.
    fn rescore_exact(&self, scored: &mut Vec<Hit>, q: &[f32], k: usize) {
        if self.quant.is_some() {
            top_k(scored, self.rescore_depth(k));
            for h in scored.iter_mut() {
                h.score = dot(&self.vectors[h.id], q);
            }
        }
    }

    /// Top-`k` most similar vectors, best first (score desc, id asc on
    /// ties).
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        let mut q = query.to_vec();
        normalize(&mut q);
        let prepared = self.quant_query(&q);
        let prepared = prepared.as_ref();
        let mut scored: Vec<Hit> = if self.is_flat() {
            let mut scored = Vec::with_capacity(self.vectors.len());
            self.stage0_scan_range(&mut scored, 0, self.vectors.len(), &q, prepared);
            scored
        } else {
            let nprobe = if self.config.nprobe == 0 {
                self.centroids.len().div_ceil(2)
            } else {
                self.config.nprobe
            }
            .clamp(1, self.centroids.len());
            let mut cells: Vec<(f32, usize)> =
                self.centroids.iter().enumerate().map(|(c, cen)| (dot(cen, &q), c)).collect();
            cells.sort_by(|a, b| b.0.total_cmp(&a.0));
            cells
                .iter()
                .take(nprobe)
                .flat_map(|&(_, c)| self.lists[c].iter())
                .map(|&id| Hit { id, score: self.stage0_score(id, &q, prepared) })
                .collect()
        };
        self.rescore_exact(&mut scored, &q, k);
        top_k(&mut scored, k);
        scored
    }

    /// [`AnnIndex::search`] under a wall-clock deadline: when the budget
    /// nears exhaustion the probe count shrinks (IVF) or the scan stops
    /// early (flat), returning whatever was scored so far. The second
    /// element is `true` when the result is partial (degraded).
    ///
    /// `deadline: None` is exactly [`AnnIndex::search`] — the happy path
    /// pays no per-vector deadline checks.
    ///
    /// # Errors
    /// [`ServeError::DimensionMismatch`] on a width mismatch.
    pub fn search_deadline(
        &self,
        query: &[f32],
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<(Vec<Hit>, bool), ServeError> {
        if query.len() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, got: query.len() });
        }
        let Some(deadline) = deadline else {
            return Ok((self.search(query, k), false));
        };
        if Instant::now() >= deadline {
            // exhausted before any work: an empty partial result, flagged,
            // beats blocking or panicking
            return Ok((Vec::new(), true));
        }
        let mut q = query.to_vec();
        normalize(&mut q);
        let prepared = self.quant_query(&q);
        let prepared = prepared.as_ref();
        let mut degraded = false;
        let mut scored: Vec<Hit> = if self.is_flat() {
            let mut scored = Vec::with_capacity(self.vectors.len());
            for chunk_start in (0..self.vectors.len()).step_by(FLAT_DEADLINE_STRIDE) {
                if chunk_start > 0 && Instant::now() >= deadline {
                    degraded = true;
                    break;
                }
                let end = (chunk_start + FLAT_DEADLINE_STRIDE).min(self.vectors.len());
                self.stage0_scan_range(&mut scored, chunk_start, end, &q, prepared);
            }
            scored
        } else {
            let nprobe = if self.config.nprobe == 0 {
                self.centroids.len().div_ceil(2)
            } else {
                self.config.nprobe
            }
            .clamp(1, self.centroids.len());
            let mut cells: Vec<(f32, usize)> =
                self.centroids.iter().enumerate().map(|(c, cen)| (dot(cen, &q), c)).collect();
            cells.sort_by(|a, b| b.0.total_cmp(&a.0));
            let probe_start = Instant::now();
            let mut scored = Vec::new();
            for (probed, &(_, c)) in cells.iter().take(nprobe).enumerate() {
                if probed > 0 {
                    // shrink the probe count when the budget is nearly
                    // gone: stop if scanning another cell (at the average
                    // cost observed so far) would overshoot the deadline
                    let now = Instant::now();
                    let avg_cell = probe_start.elapsed() / probed as u32;
                    if now >= deadline || now + avg_cell > deadline {
                        degraded = true;
                        break;
                    }
                }
                scored.extend(
                    self.lists[c]
                        .iter()
                        .map(|&id| Hit { id, score: self.stage0_score(id, &q, prepared) }),
                );
            }
            scored
        };
        // the rescore pool is a few hundred dots at most — even a blown
        // budget affords it, and it keeps partial results exact-backed
        self.rescore_exact(&mut scored, &q, k);
        top_k(&mut scored, k);
        Ok((scored, degraded))
    }

    /// Searches many queries rayon-parallel; result `i` answers query `i`.
    pub fn search_batch(&self, queries: &[(Vec<f32>, usize)]) -> Vec<Vec<Hit>> {
        queries.par_iter().map(|(q, k)| self.search(q, *k)).collect()
    }

    /// Exact top-`k` by full scan regardless of mode (recall reference).
    pub fn search_exact(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        let mut q = query.to_vec();
        normalize(&mut q);
        let mut scored: Vec<Hit> = (0..self.vectors.len())
            .map(|id| Hit { id, score: dot(&self.vectors[id], &q) })
            .collect();
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        scored.truncate(k);
        scored
    }

    /// Point-in-time clustering health: assignment-count skew and mean
    /// residual (see [`DriftStats`]). O(`n · dim`) for the residual scan.
    pub fn drift_stats(&self) -> DriftStats {
        if self.is_flat() {
            return DriftStats { len: self.vectors.len(), nlist: 0, skew: 1.0, mean_residual: 0.0 };
        }
        let n = self.vectors.len();
        let mean_fill = n as f32 / self.lists.len() as f32;
        let max_fill = self.lists.iter().map(Vec::len).max().unwrap_or(0) as f32;
        let skew = if mean_fill > 0.0 { max_fill / mean_fill } else { 1.0 };
        let mut residual = 0.0f32;
        for (c, list) in self.lists.iter().enumerate() {
            for &id in list {
                residual += 1.0 - dot(&self.vectors[id], &self.centroids[c]);
            }
        }
        DriftStats {
            len: n,
            nlist: self.lists.len(),
            skew,
            mean_residual: if n > 0 { residual / n as f32 } else { 0.0 },
        }
    }

    /// Re-trains the centroid table over the current vectors with the
    /// build config (seed, iteration count, `nlist` re-resolved for the
    /// current size — a corpus that has grown past `~nlist²` gets more
    /// cells). Pure: the index is not modified, so callers clone the index
    /// and train on a maintenance thread while the live copy keeps
    /// serving. Collections at or below `flat_threshold` yield an empty
    /// plan that keeps (or returns the index to) exact flat mode.
    pub fn train_recluster(&self) -> ReclusterPlan {
        let n = self.vectors.len();
        let (centroids, lists) = if n <= self.config.flat_threshold {
            (Vec::new(), Vec::new())
        } else {
            let nlist = resolved_nlist(&self.config, n);
            Self::kmeans(&self.vectors, nlist, self.config.kmeans_iters, self.config.seed)
        };
        ReclusterPlan { centroids, lists, trained_len: n }
    }

    /// Swaps a re-trained centroid table in. Vectors inserted after the
    /// plan was trained are routed to their nearest new centroid, and SQ8
    /// scales are re-fitted over the current vectors when quantized. When
    /// the new table is identical to the live one (zero drift — guaranteed
    /// for an unchanged corpus because build and re-train share one
    /// k-means), the install is skipped entirely: generation is not
    /// bumped, so cached results stay valid.
    ///
    /// # Errors
    /// [`ServeError::Invalid`] when the plan was trained over more vectors
    /// than the index holds (a plan from a different index), or when the
    /// SQ8 re-fit encounters a non-finite value.
    pub fn install_recluster(
        &mut self,
        mut plan: ReclusterPlan,
    ) -> Result<ReclusterReport, ServeError> {
        if plan.trained_len > self.vectors.len() {
            return Err(ServeError::Invalid(format!(
                "recluster plan trained over {} vectors but the index holds {}",
                plan.trained_len,
                self.vectors.len()
            )));
        }
        let routed_tail = self.vectors.len() - plan.trained_len;
        if !plan.centroids.is_empty() {
            for id in plan.trained_len..self.vectors.len() {
                let c = nearest_centroid(&plan.centroids, &self.vectors[id]);
                plan.lists[c].push(id);
            }
        }
        let changed = plan.centroids != self.centroids || plan.lists != self.lists;
        if changed {
            self.centroids = plan.centroids;
            self.lists = plan.lists;
            if self.quant.is_some() {
                // the corpus the scales were fitted over has drifted too:
                // re-fit so stage-0 code error tracks the current data
                self.enable_sq8()?;
            }
            self.generation += 1;
        }
        Ok(ReclusterReport {
            changed,
            nlist: self.centroids.len(),
            len: self.vectors.len(),
            routed_tail,
        })
    }

    /// [`AnnIndex::train_recluster`] + [`AnnIndex::install_recluster`] in
    /// one synchronous call — the forced path (`force_recluster`) and the
    /// test harness use this; the maintenance thread splits the two so
    /// training holds no locks.
    ///
    /// # Errors
    /// Propagates [`AnnIndex::install_recluster`] errors.
    pub fn recluster(&mut self) -> Result<ReclusterReport, ServeError> {
        let plan = self.train_recluster();
        self.install_recluster(plan)
    }

    /// Serialises the whole index to JSON.
    ///
    /// # Errors
    /// Propagates serialisation failure as [`ServeError::Invalid`] instead
    /// of panicking.
    pub fn to_json(&self) -> Result<String, ServeError> {
        serde_json::to_string(self)
            .map_err(|e| ServeError::Invalid(format!("index serialisation: {e}")))
    }

    /// Serialises the whole index to JSON bytes (snapshot payload).
    ///
    /// # Errors
    /// Propagates serialisation failure as [`ServeError::Invalid`].
    pub fn to_json_bytes(&self) -> Result<Vec<u8>, ServeError> {
        self.to_json().map(String::into_bytes)
    }

    /// Restores an index from [`AnnIndex::to_json`] output.
    ///
    /// # Errors
    /// Returns an error for malformed JSON or internally inconsistent
    /// shapes.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let idx: AnnIndex = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if idx.vectors.is_empty() {
            return Err("index holds no vectors".into());
        }
        if idx.vectors.iter().any(|v| v.len() != idx.dim)
            || idx.centroids.iter().any(|c| c.len() != idx.dim)
        {
            return Err("inconsistent vector widths".into());
        }
        if idx.centroids.len() != idx.lists.len() {
            return Err("centroid/list count mismatch".into());
        }
        let n = idx.vectors.len();
        if idx.lists.iter().flatten().any(|&id| id >= n) {
            return Err("cell entry out of range".into());
        }
        if let Some(layout) = &idx.layout {
            if layout.dim() != idx.dim {
                return Err(format!(
                    "facet layout covers {} elements but vectors are {}-wide",
                    layout.dim(),
                    idx.dim
                ));
            }
        }
        if let Some(sq) = &idx.quant {
            if sq.widths.is_empty() || sq.widths.contains(&0) {
                return Err("quant segment widths must be non-empty and positive".into());
            }
            if sq.widths.iter().sum::<usize>() != idx.dim {
                return Err(format!(
                    "quant segments cover {} elements but vectors are {}-wide",
                    sq.widths.iter().sum::<usize>(),
                    idx.dim
                ));
            }
            if sq.scales.len() != sq.widths.len() {
                return Err(format!(
                    "quant holds {} scales for {} segments",
                    sq.scales.len(),
                    sq.widths.len()
                ));
            }
            if sq.codes.len() != n * idx.dim {
                return Err(format!(
                    "quant codes hold {} bytes for {} vectors of width {}",
                    sq.codes.len(),
                    n,
                    idx.dim
                ));
            }
            if sq.scales.iter().any(|s| !s.min.is_finite() || !s.delta.is_finite() || s.delta < 0.0)
            {
                return Err("quant scale is non-finite or has a negative step".into());
            }
            if sq.rescore == 0 {
                return Err("quant rescore depth must be positive".into());
            }
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    #[test]
    fn small_collections_stay_flat_and_exact() {
        let idx = AnnIndex::build(random_vectors(100, 8, 1), IndexConfig::default());
        assert!(idx.is_flat());
        let q = idx.vector(42).to_vec();
        let hits = idx.search(&q, 5);
        assert_eq!(hits[0].id, 42);
        assert!((hits[0].score - 1.0).abs() < 1e-5);
        assert_eq!(hits, idx.search_exact(&q, 5));
    }

    #[test]
    fn large_collections_cluster_and_self_query_wins() {
        let idx = AnnIndex::build(random_vectors(1200, 16, 2), IndexConfig::default());
        assert!(!idx.is_flat());
        for probe in [0usize, 7, 300, 1199] {
            let q = idx.vector(probe).to_vec();
            let hits = idx.search(&q, 3);
            assert_eq!(hits[0].id, probe, "self-query must return itself first");
        }
    }

    #[test]
    fn hits_are_sorted_and_truncated() {
        let idx = AnnIndex::build(random_vectors(50, 6, 3), IndexConfig::default());
        let hits = idx.search(&random_vectors(1, 6, 4)[0], 10);
        assert_eq!(hits.len(), 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // k larger than the collection clamps
        assert_eq!(idx.search(idx.vector(0), 500).len(), 50);
    }

    #[test]
    fn insert_routes_without_rebuild() {
        let mut idx = AnnIndex::build(random_vectors(800, 12, 5), IndexConfig::default());
        let g0 = idx.generation();
        let v = random_vectors(1, 12, 6).pop().unwrap();
        let id = idx.insert(v.clone());
        assert_eq!(id, 800);
        assert_eq!(idx.len(), 801);
        assert_eq!(idx.generation(), g0 + 1);
        let hits = idx.search(&v, 1);
        assert_eq!(hits[0].id, id);
    }

    #[test]
    fn batch_matches_individual_searches() {
        let idx = AnnIndex::build(random_vectors(600, 10, 7), IndexConfig::default());
        let queries: Vec<(Vec<f32>, usize)> =
            random_vectors(9, 10, 8).into_iter().map(|q| (q, 4)).collect();
        let batch = idx.search_batch(&queries);
        for (i, (q, k)) in queries.iter().enumerate() {
            assert_eq!(batch[i], idx.search(q, *k));
        }
    }

    #[test]
    fn json_roundtrip_preserves_results() {
        let mut idx = AnnIndex::build(random_vectors(500, 8, 9), IndexConfig::default());
        idx.insert(random_vectors(1, 8, 10).pop().unwrap());
        let q = random_vectors(1, 8, 11).pop().unwrap();
        let restored = AnnIndex::from_json(&idx.to_json().unwrap()).unwrap();
        assert_eq!(restored.search(&q, 7), idx.search(&q, 7));
        assert_eq!(restored.generation(), idx.generation());
        assert!(AnnIndex::from_json("nonsense").is_err());
    }

    #[test]
    fn try_variants_return_typed_errors() {
        assert!(matches!(
            AnnIndex::try_build(Vec::new(), IndexConfig::default()),
            Err(ServeError::EmptyIndex)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            AnnIndex::try_build(ragged, IndexConfig::default()),
            Err(ServeError::DimensionMismatch { expected: 2, got: 1 })
        ));
        let mut idx = AnnIndex::build(random_vectors(40, 4, 20), IndexConfig::default());
        assert!(matches!(
            idx.try_insert(vec![1.0; 7]),
            Err(ServeError::DimensionMismatch { expected: 4, got: 7 })
        ));
        assert_eq!(idx.try_insert(vec![1.0; 4]).unwrap(), 40);
    }

    #[test]
    fn generous_deadline_matches_plain_search() {
        for seed in [21u64, 22] {
            // both flat (small) and IVF (large) modes
            let n = if seed == 21 { 100 } else { 1500 };
            let idx = AnnIndex::build(random_vectors(n, 8, seed), IndexConfig::default());
            let q = random_vectors(1, 8, seed ^ 0xff).pop().unwrap();
            let far = Instant::now() + std::time::Duration::from_secs(60);
            let (hits, degraded) = idx.search_deadline(&q, 10, Some(far)).unwrap();
            assert!(!degraded);
            assert_eq!(hits, idx.search(&q, 10));
            let (hits, degraded) = idx.search_deadline(&q, 10, None).unwrap();
            assert!(!degraded);
            assert_eq!(hits, idx.search(&q, 10));
        }
    }

    #[test]
    fn exhausted_deadline_degrades_instead_of_blocking() {
        let idx = AnnIndex::build(random_vectors(1500, 8, 23), IndexConfig::default());
        let q = random_vectors(1, 8, 24).pop().unwrap();
        // a deadline already in the past: empty partial result, flagged
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let (hits, degraded) = idx.search_deadline(&q, 10, Some(past)).unwrap();
        assert!(degraded);
        assert!(hits.is_empty());
        // width mismatch is a typed error, not a panic
        assert!(idx.search_deadline(&[0.0; 3], 5, None).is_err());
    }

    #[test]
    fn layout_is_metadata_only_and_roundtrips() {
        let vectors = random_vectors(300, 12, 30);
        let plain = AnnIndex::build(vectors.clone(), IndexConfig::default());
        let faceted = AnnIndex::build(vectors, IndexConfig::default())
            .with_layout(FacetLayout::sem(4))
            .unwrap();
        assert!(faceted.has_facets());
        assert!(!plain.has_facets());
        // attaching a layout cannot change stage-1 results
        let q = random_vectors(1, 12, 31).pop().unwrap();
        assert_eq!(plain.search(&q, 10), faceted.search(&q, 10));
        // fused fallback spans the whole vector
        assert_eq!(plain.layout(), FacetLayout::fused(12));
        // layout survives the JSON roundtrip (the snapshot payload)
        let back = AnnIndex::from_json(&faceted.to_json().unwrap()).unwrap();
        assert_eq!(back.layout(), faceted.layout());
        // width mismatch is typed
        let narrow = AnnIndex::build(random_vectors(10, 4, 32), IndexConfig::default());
        assert!(matches!(
            narrow.with_layout(FacetLayout::sem(4)),
            Err(ServeError::DimensionMismatch { expected: 4, got: 12 })
        ));
    }

    #[test]
    fn facet_checksums_localise_corruption() {
        // one-hot vectors have norm exactly 1.0, so normalisation is the
        // bitwise identity and segments can be compared across builds
        let one_hot = |hot: usize| {
            let mut v = vec![0.0f32; 9];
            v[hot] = 1.0;
            v
        };
        let vectors: Vec<Vec<f32>> = (0..120).map(|i| one_hot(i % 9)).collect();
        let idx = AnnIndex::build(vectors.clone(), IndexConfig::default())
            .with_layout(FacetLayout::sem(3))
            .unwrap();
        let sums = idx.facet_checksums();
        assert_eq!(sums.len(), 3);
        assert_eq!(sums[0].name, "bg");
        assert_eq!(sums[0].dim, 3);
        // deterministic across identical builds
        let again = AnnIndex::build(vectors.clone(), IndexConfig::default())
            .with_layout(FacetLayout::sem(3))
            .unwrap();
        assert_eq!(again.facet_checksums(), sums);
        // moving vector 4's hot element within the "method" segment
        // (range 3..6) changes exactly that facet's checksum
        let mut perturbed = vectors;
        perturbed[4] = one_hot(5);
        assert_eq!(perturbed[4][4], 0.0);
        let other = AnnIndex::build(perturbed, IndexConfig::default())
            .with_layout(FacetLayout::sem(3))
            .unwrap();
        let other_sums = other.facet_checksums();
        assert_eq!(other_sums[0], sums[0], "bg segment untouched");
        assert_ne!(other_sums[1], sums[1], "method segment must differ");
        assert_eq!(other_sums[2], sums[2], "result segment untouched");
    }

    #[test]
    fn quantized_search_is_exact_rescore_backed() {
        for (n, seed) in [(200usize, 40u64), (1500, 41)] {
            // flat (small) and IVF (large) modes both take the SQ8 path
            let idx = AnnIndex::build(random_vectors(n, 12, seed), IndexConfig::default())
                .with_sq8()
                .unwrap();
            assert!(idx.is_quantized());
            let q = idx.vector(7).to_vec();
            let hits = idx.search(&q, 5);
            assert_eq!(hits[0].id, 7, "self-query must survive quantization");
            // scores come from the f32 rescore, not the codes: the top hit
            // of a self-query is an exact cosine of 1.0
            assert!((hits[0].score - 1.0).abs() < 1e-5);
            let mut unit = q.clone();
            normalize(&mut unit);
            for h in &hits {
                let exact = dot(idx.vector(h.id), &unit);
                assert!((h.score - exact).abs() < 1e-5, "hit score must be the exact dot");
            }
        }
    }

    #[test]
    fn quantized_recall_stays_high() {
        let vectors = random_vectors(2000, 16, 42);
        let f32_idx = AnnIndex::build(vectors.clone(), IndexConfig::default());
        let sq8_idx = AnnIndex::build(vectors, IndexConfig::default()).with_sq8().unwrap();
        let queries = random_vectors(25, 16, 43);
        let mut overlap = 0usize;
        for q in &queries {
            let ann: Vec<usize> = sq8_idx.search(q, 10).iter().map(|h| h.id).collect();
            let exact: Vec<usize> = f32_idx.search_exact(q, 10).iter().map(|h| h.id).collect();
            overlap += exact.iter().filter(|id| ann.contains(id)).count();
        }
        let recall = overlap as f64 / (10 * queries.len()) as f64;
        assert!(recall >= 0.95, "quantized recall@10 {recall}");
    }

    #[test]
    fn quantized_insert_and_json_roundtrip() {
        let mut idx =
            AnnIndex::build(random_vectors(400, 8, 44), IndexConfig::default()).with_sq8().unwrap();
        // newcomers are quantized under the frozen scales and stay findable
        let v = random_vectors(1, 8, 45).pop().unwrap();
        let id = idx.insert(v.clone());
        assert_eq!(idx.search(&v, 1)[0].id, id);
        // quant sidecar survives the JSON roundtrip with identical results
        let back = AnnIndex::from_json(&idx.to_json().unwrap()).unwrap();
        assert!(back.is_quantized());
        let q = random_vectors(1, 8, 46).pop().unwrap();
        assert_eq!(back.search(&q, 7), idx.search(&q, 7));
        assert_eq!(back.quant_checksums(), idx.quant_checksums());
    }

    #[test]
    fn quantized_memory_is_a_quarter_of_f32() {
        let idx = AnnIndex::build(random_vectors(1000, 32, 47), IndexConfig::default())
            .with_sq8()
            .unwrap();
        let ratio = idx.quant_bytes().unwrap() as f64 / idx.vector_bytes() as f64;
        assert!(ratio < 0.3, "codes/vectors byte ratio {ratio}");
    }

    #[test]
    fn quant_checksums_follow_the_facet_layout() {
        let vectors = random_vectors(150, 9, 48);
        let idx = AnnIndex::build(vectors.clone(), IndexConfig::default())
            .with_layout(FacetLayout::sem(3))
            .unwrap()
            .with_sq8()
            .unwrap();
        let sums = idx.quant_checksums();
        assert_eq!(sums.len(), 3);
        assert_eq!(sums[0].name, "bg");
        assert_eq!(sums[0].dim, 3);
        // deterministic across identical builds
        let again = AnnIndex::build(vectors, IndexConfig::default())
            .with_layout(FacetLayout::sem(3))
            .unwrap()
            .with_sq8()
            .unwrap();
        assert_eq!(again.quant_checksums(), sums);
        // an unquantized index has no code checksums
        let plain = AnnIndex::build(random_vectors(10, 9, 49), IndexConfig::default());
        assert!(plain.quant_checksums().is_empty());
    }

    #[test]
    fn corrupt_quant_sidecars_are_rejected() {
        let idx =
            AnnIndex::build(random_vectors(60, 8, 50), IndexConfig::default()).with_sq8().unwrap();
        use serde_json::JsonValue;
        fn obj_field<'a>(v: &'a mut JsonValue, name: &str) -> &'a mut JsonValue {
            match v {
                JsonValue::Obj(fields) => {
                    &mut fields.iter_mut().find(|(k, _)| k == name).expect(name).1
                }
                other => panic!("expected object, got {}", other.kind()),
            }
        }
        let val = serde_json::parse(&idx.to_json().unwrap()).unwrap();
        // truncated code buffer
        let mut truncated = val.clone();
        match obj_field(obj_field(&mut truncated, "quant"), "codes") {
            JsonValue::Arr(codes) => {
                codes.pop();
            }
            other => panic!("expected array, got {}", other.kind()),
        }
        let err = AnnIndex::from_json(&serde_json::to_string(&truncated).unwrap()).unwrap_err();
        assert!(err.contains("quant codes"), "{err}");
        // negative quantization step
        let mut negated = val;
        match obj_field(obj_field(&mut negated, "quant"), "scales") {
            JsonValue::Arr(scales) => {
                *obj_field(&mut scales[0], "delta") = JsonValue::Float(-1.0);
            }
            other => panic!("expected array, got {}", other.kind()),
        }
        let err = AnnIndex::from_json(&serde_json::to_string(&negated).unwrap()).unwrap_err();
        assert!(err.contains("negative step"), "{err}");
    }

    #[test]
    fn zero_drift_recluster_is_bit_identical_and_skipped() {
        let idx = AnnIndex::build(random_vectors(1500, 12, 60), IndexConfig::default());
        let json_before = idx.to_json().unwrap();
        let mut again = idx.clone();
        let report = again.recluster().unwrap();
        assert!(!report.changed, "unchanged corpus must re-train to the same table");
        assert_eq!(report.routed_tail, 0);
        assert_eq!(again.generation(), idx.generation(), "no-op install must not bump");
        assert_eq!(again.to_json().unwrap(), json_before, "snapshot must be byte-identical");
    }

    #[test]
    fn recluster_after_churn_routes_tail_and_restores_recall() {
        let mut idx = AnnIndex::build(random_vectors(1200, 12, 61), IndexConfig::default());
        let plan = idx.train_recluster();
        // corpus churns while training runs: drifted (offset) newcomers
        let mut extra = random_vectors(300, 12, 62);
        for v in &mut extra {
            v[0] += 2.0;
        }
        for v in &extra {
            idx.insert(v.clone());
        }
        let report = idx.install_recluster(plan).unwrap();
        assert_eq!(report.routed_tail, 300, "post-training inserts must be routed");
        assert_eq!(report.len, 1500);
        // every vector — old and routed tail — must still self-query
        for probe in [0usize, 599, 1200, 1499] {
            let hits = idx.search(idx.vector(probe), 1);
            assert_eq!(hits[0].id, probe, "self-query after recluster handover");
        }
        // a genuinely changed corpus re-trains to a different table
        let report = idx.recluster().unwrap();
        assert!(report.changed, "nlist re-resolves for the grown corpus");
        assert_eq!(report.nlist, resolved_nlist(&IndexConfig::default(), 1500));
    }

    #[test]
    fn recluster_refits_quant_scales() {
        let mut idx = AnnIndex::build(random_vectors(1000, 8, 63), IndexConfig::default())
            .with_sq8()
            .unwrap();
        let sums_before = idx.quant_checksums();
        let mut extra = random_vectors(400, 8, 64);
        for v in &mut extra {
            v[2] -= 3.0;
        }
        for v in &extra {
            idx.insert(v.clone());
        }
        let report = idx.recluster().unwrap();
        assert!(report.changed);
        assert!(idx.is_quantized(), "quant sidecar must survive the handover");
        assert_ne!(idx.quant_checksums(), sums_before, "scales re-fit over the drifted corpus");
        for probe in [0usize, 500, 1399] {
            let hits = idx.search(idx.vector(probe), 1);
            assert_eq!(hits[0].id, probe);
        }
    }

    #[test]
    fn drift_stats_track_skewed_ingest() {
        let mut idx = AnnIndex::build(random_vectors(1200, 10, 65), IndexConfig::default());
        let base = idx.drift_stats();
        assert_eq!(base.len, 1200);
        assert!(base.nlist > 0);
        assert!(base.skew >= 1.0);
        assert!(base.mean_residual > 0.0, "random data never sits on its centroids");
        // pile drifted vectors into whatever cell attracts them: skew and
        // residual must both grow
        let mut extra = random_vectors(600, 10, 66);
        for v in &mut extra {
            v[0] += 4.0;
        }
        for v in &extra {
            idx.insert(v.clone());
        }
        let after = idx.drift_stats();
        assert!(after.skew > base.skew, "skew {} -> {}", base.skew, after.skew);
        assert!(
            after.mean_residual > base.mean_residual,
            "residual {} -> {}",
            base.mean_residual,
            after.mean_residual
        );
        // re-clustering repairs both signals
        idx.recluster().unwrap();
        let repaired = idx.drift_stats();
        assert!(repaired.mean_residual < after.mean_residual);
        // flat indexes report neutral drift
        let flat = AnnIndex::build(random_vectors(50, 10, 67), IndexConfig::default());
        let stats = flat.drift_stats();
        assert_eq!((stats.nlist, stats.skew, stats.mean_residual), (0, 1.0, 0.0));
    }

    #[test]
    fn stale_plan_from_longer_index_is_rejected() {
        let big = AnnIndex::build(random_vectors(900, 8, 68), IndexConfig::default());
        let plan = big.train_recluster();
        let mut small = AnnIndex::build(random_vectors(500, 8, 68), IndexConfig::default());
        assert!(matches!(small.install_recluster(plan), Err(ServeError::Invalid(_))));
    }

    #[test]
    fn recall_on_clustered_data_is_high() {
        // random uniform is the worst case for IVF; still, the default
        // config must find the bulk of true neighbours
        let vectors = random_vectors(2000, 12, 12);
        let idx = AnnIndex::build(vectors, IndexConfig::default());
        let queries = random_vectors(20, 12, 13);
        let mut overlap = 0usize;
        for q in &queries {
            let ann: Vec<usize> = idx.search(q, 10).iter().map(|h| h.id).collect();
            let exact: Vec<usize> = idx.search_exact(q, 10).iter().map(|h| h.id).collect();
            overlap += exact.iter().filter(|id| ann.contains(id)).count();
        }
        let recall = overlap as f64 / (10 * queries.len()) as f64;
        assert!(recall >= 0.9, "recall@10 {recall}");
    }
}
