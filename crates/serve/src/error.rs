//! Typed errors for the serving subsystem.
//!
//! Every fallible serve-layer operation returns a [`ServeError`] instead of
//! panicking: a corrupt snapshot is *detected* (checksum/shape validation),
//! a width mismatch is *reported*, an exhausted deadline *degrades*, and an
//! injected fault (see [`crate::fault`]) surfaces as
//! [`ServeError::InjectedCrash`] so recovery tests can observe the exact
//! crash point.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong between a request and a served result.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem-level failure, annotated with the path involved.
    Io {
        /// File the operation touched.
        path: PathBuf,
        /// Underlying OS error.
        source: std::io::Error,
    },
    /// A snapshot failed validation (bad magic, version, checksum or
    /// internal shape) and was rejected rather than loaded.
    CorruptSnapshot {
        /// Snapshot file.
        path: PathBuf,
        /// What check failed.
        detail: String,
    },
    /// A vector's width does not match the index.
    DimensionMismatch {
        /// Width the index holds.
        expected: usize,
        /// Width that was offered.
        got: usize,
    },
    /// A request's deadline expired before any work could be done.
    DeadlineExceeded,
    /// The write-ahead journal could not be replayed onto the snapshot.
    JournalReplay {
        /// Zero-based record number that failed.
        record: usize,
        /// What went wrong.
        detail: String,
    },
    /// An operation needs vectors but none exist.
    EmptyIndex,
    /// A structurally invalid configuration or payload.
    Invalid(String),
    /// The engine's index is mid-recovery and cannot serve fresh searches.
    Recovering,
    /// A shard of a [`crate::ShardRouter`] is down (crashed store, failed
    /// recovery) and the operation needed exactly that shard.
    ShardDown {
        /// Ordinal of the unavailable shard.
        shard: usize,
        /// Why the shard went down.
        detail: String,
    },
    /// Admission control shed the request: the pending-work budget is
    /// exhausted and queueing it would only grow the backlog. The caller
    /// should back off for roughly `retry_after_ms` and retry.
    Overloaded {
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// The streaming-ingest queue is full: ingest is arriving faster than
    /// the maintenance drainer applies it, and accepting more would grow
    /// memory without bound. Distinct from [`ServeError::Overloaded`]
    /// (query admission) so load reports can bound the two paths
    /// independently. The producer should back off for roughly
    /// `retry_after_ms` and retry.
    IngestBackpressure {
        /// Suggested producer backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// A [`crate::fault::FaultPlan`] fired: the simulated machine died at
    /// the named crash point. On-disk state is exactly what a real crash
    /// would leave behind.
    InjectedCrash(&'static str),
    /// A malformed facet-weight spec or rerank parameter set (unknown
    /// facet name, negative weight, λ outside [0, 1], …) — a usage error,
    /// reported before any work is done.
    InvalidFacets {
        /// What was wrong with the spec, including the valid facet names
        /// where relevant.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            ServeError::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            ServeError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: index holds {expected}-wide vectors, got {got}")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before any work was done"),
            ServeError::JournalReplay { record, detail } => {
                write!(f, "journal replay failed at record {record}: {detail}")
            }
            ServeError::EmptyIndex => write!(f, "index holds no vectors"),
            ServeError::Invalid(msg) => write!(f, "invalid: {msg}"),
            ServeError::Recovering => {
                write!(f, "index is mid-recovery; fresh searches unavailable")
            }
            ServeError::ShardDown { shard, detail } => {
                write!(f, "shard {shard} is down: {detail}")
            }
            ServeError::Overloaded { retry_after_ms } => {
                write!(
                    f,
                    "overloaded: pending-work budget exhausted, retry after {retry_after_ms}ms"
                )
            }
            ServeError::IngestBackpressure { retry_after_ms } => {
                write!(f, "ingest backpressure: queue full, retry after {retry_after_ms}ms")
            }
            ServeError::InjectedCrash(site) => write!(f, "injected crash at {site}"),
            ServeError::InvalidFacets { detail } => write!(f, "invalid facet spec: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ServeError {
    /// Wraps an IO error with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        ServeError::Io { path: path.into(), source }
    }

    /// Shorthand for a snapshot-validation failure.
    pub fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        ServeError::CorruptSnapshot { path: path.into(), detail: detail.into() }
    }

    /// `true` when this error came from an injected fault rather than a
    /// genuine failure (tests use this to tell the two apart).
    pub fn is_injected(&self) -> bool {
        matches!(self, ServeError::InjectedCrash(_))
    }

    /// `true` when this is transient I/O worth retrying (classification
    /// shared with the training runtime via [`sem_train::retry`]).
    /// Injected crashes are never retryable — they model a dead machine,
    /// not a hiccup.
    pub fn is_retryable_io(&self) -> bool {
        match self {
            ServeError::Io { source, .. } => sem_train::retry::io_retryable(source.kind()),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = ServeError::corrupt("/x/snap.bin", "payload checksum mismatch");
        assert!(e.to_string().contains("snap.bin"));
        assert!(e.to_string().contains("checksum"));
        let e = ServeError::DimensionMismatch { expected: 8, got: 3 };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains('3'));
        assert!(ServeError::InjectedCrash("torn write").is_injected());
        assert!(!ServeError::DeadlineExceeded.is_injected());
        let e = ServeError::Overloaded { retry_after_ms: 250 };
        assert!(e.to_string().contains("250ms"));
        assert!(!e.is_retryable_io());
        let e = ServeError::IngestBackpressure { retry_after_ms: 40 };
        assert!(e.to_string().contains("40ms"));
        assert!(e.to_string().contains("backpressure"));
        assert!(!e.is_retryable_io());
    }

    #[test]
    fn io_errors_carry_their_source() {
        use std::error::Error;
        let e = ServeError::io("/y", std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("/y"));
    }
}
