//! # sem-serve
//!
//! The online serving subsystem: everything between a trained SEM/NPRec
//! stack and a stream of top-K requests.
//!
//! * [`PaperEmbedder`] composes index vectors — SEM subspace embeddings
//!   `c_p^k` concatenated with the NPRec interest/influence representations
//!   when a trained recommendation model is attached.
//! * [`AnnIndex`] is an IVF-flat approximate-nearest-neighbour index with
//!   rayon-parallel construction and an exact brute-force fallback for
//!   small corpora; insertion routes a new vector to its nearest cell
//!   without rebuilding. [`AnnIndex::enable_sq8`] switches the scan to
//!   SQ8 quantized codes (~4x smaller) with an exact f32 rescore of the
//!   top candidates, so final scores stay exact.
//! * [`QueryEngine`] coalesces concurrently enqueued queries into
//!   rayon-parallel batches, caches results in an LRU keyed by the exact
//!   normalised query, invalidates precisely the entries an ingested paper
//!   could change, enforces per-request deadlines with graceful
//!   degradation, and exposes per-stage latency/throughput counters.
//! * [`IndexStore`] is crash-safe persistence: versioned checksummed
//!   snapshots written atomically, plus a write-ahead journal so every
//!   acknowledged ingest survives a crash; [`FaultPlan`] drives
//!   deterministic fault-injection tests of exactly those guarantees.
//! * [`ShardRouter`] scales the query path out: the corpus is partitioned
//!   round-robin across N [`Shard`]s, each with its own index, LRU cache
//!   and crash-safe store; queries fan out shard-parallel and merge via a
//!   bounded binary-heap, ingests route to exactly one shard (and only
//!   that shard's cache), and a dead shard degrades responses instead of
//!   failing them until [`ShardRouter::recover_shard`] heals it. The
//!   [`loadgen`] module (and `loadgen` binary) drive it with open-loop,
//!   coordinated-omission-free load and report p50/p90/p99 as JSON.
//! * [`ShardSupervisor`] closes the healing loop: periodic health probes
//!   (cheap self-query, optional store integrity check) trip a broken
//!   shard down after consecutive failures and re-run crash recovery in
//!   the background under deterministic jittered backoff. The router adds
//!   admission control ([`ShardRouter::set_admission`] shedding with
//!   typed [`ServeError::Overloaded`]) and hedged scatter-gather
//!   ([`ShardRouter::set_hedge`]) for tail-latency control; `loadgen
//!   --chaos` soaks the whole stack under seeded shard kills, journal
//!   corruption and latency spikes.
//!
//! The intended flow for a brand-new (zero-citation) paper: CRF sentence
//! labels → sentence encoding → SEM subspace pooling → [`PaperEmbedder::embed_new`]
//! → [`QueryEngine::ingest_vector`] — after which the paper is immediately
//! retrievable, no retraining or index rebuild involved.
//!
//! Failures are typed end-to-end: every fallible serve operation returns
//! [`ServeError`] (corrupt snapshot, dimension mismatch, deadline
//! exceeded, journal replay failure, …) instead of panicking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod embed;
pub mod engine;
pub mod error;
pub mod facet;
pub mod fault;
pub mod index;
pub mod loadgen;
pub mod maintenance;
pub mod rerank;
pub mod router;
pub mod shard;
pub mod store;
pub mod supervisor;

pub use cache::LruCache;
pub use embed::{NpRecContext, PaperEmbedder};
pub use engine::{
    DegradeReason, EngineConfig, IngestAck, QueryEngine, QueryRequest, QueryResponse,
    RecoveryStats, StatsSnapshot,
};
pub use error::ServeError;
pub use facet::{
    parse_weights, FacetChecksum, FacetLayout, RerankParams, DEFAULT_CANDIDATES, NPREC_FACET_NAME,
    SEM_FACET_NAMES,
};
pub use fault::{CrashPoint, FaultPlan};
pub use index::{AnnIndex, Hit, IndexConfig, DEFAULT_RESCORE};
pub use index::{DriftStats, ReclusterPlan, ReclusterReport};
pub use loadgen::{
    ChaosConfig, ChaosEvent, ChaosKind, ChaosRunReport, ChurnConfig, ChurnRunReport,
    DegradeBreakdown, LoadReport, LoadgenConfig,
};
pub use maintenance::{
    DrainReport, IngestQueue, Maintainer, MaintainerStatus, MaintenanceConfig, TickReport,
};
pub use router::{
    manifest_path, shard_snapshot_path, verify_sharded, HedgeConfig, RouterStatsSnapshot,
    ShardManifest, ShardRouter, ShardVerifyEntry, ShardedVerifyReport,
};
pub use shard::{
    merge_top_k, shard_of, CompactionReport, MaintenanceStatus, ProbeReport, Shard, ShardConfig,
    ShardStatsSnapshot,
};
pub use store::{Durability, IndexStore, Recovery, VerifyReport};
pub use supervisor::{
    ShardHealth, ShardSupervisor, SupervisorConfig, SupervisorEvent, SupervisorSnapshot,
};
