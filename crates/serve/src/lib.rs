//! # sem-serve
//!
//! The online serving subsystem: everything between a trained SEM/NPRec
//! stack and a stream of top-K requests.
//!
//! * [`PaperEmbedder`] composes index vectors — SEM subspace embeddings
//!   `c_p^k` concatenated with the NPRec interest/influence representations
//!   when a trained recommendation model is attached.
//! * [`AnnIndex`] is an IVF-flat approximate-nearest-neighbour index with
//!   rayon-parallel construction and an exact brute-force fallback for
//!   small corpora; insertion routes a new vector to its nearest cell
//!   without rebuilding.
//! * [`QueryEngine`] coalesces concurrently enqueued queries into
//!   rayon-parallel batches, caches results in an LRU keyed by the exact
//!   normalised query, invalidates precisely the entries an ingested paper
//!   could change, and exposes per-stage latency/throughput counters.
//!
//! The intended flow for a brand-new (zero-citation) paper: CRF sentence
//! labels → sentence encoding → SEM subspace pooling → [`PaperEmbedder::embed_new`]
//! → [`QueryEngine::ingest_vector`] — after which the paper is immediately
//! retrievable, no retraining or index rebuild involved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod embed;
pub mod engine;
pub mod index;

pub use cache::LruCache;
pub use embed::{NpRecContext, PaperEmbedder};
pub use engine::{EngineConfig, QueryEngine, QueryRequest, StatsSnapshot};
pub use index::{AnnIndex, Hit, IndexConfig};
