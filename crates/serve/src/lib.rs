//! # sem-serve
//!
//! The online serving subsystem: everything between a trained SEM/NPRec
//! stack and a stream of top-K requests.
//!
//! * [`PaperEmbedder`] composes index vectors — SEM subspace embeddings
//!   `c_p^k` concatenated with the NPRec interest/influence representations
//!   when a trained recommendation model is attached.
//! * [`AnnIndex`] is an IVF-flat approximate-nearest-neighbour index with
//!   rayon-parallel construction and an exact brute-force fallback for
//!   small corpora; insertion routes a new vector to its nearest cell
//!   without rebuilding.
//! * [`QueryEngine`] coalesces concurrently enqueued queries into
//!   rayon-parallel batches, caches results in an LRU keyed by the exact
//!   normalised query, invalidates precisely the entries an ingested paper
//!   could change, enforces per-request deadlines with graceful
//!   degradation, and exposes per-stage latency/throughput counters.
//! * [`IndexStore`] is crash-safe persistence: versioned checksummed
//!   snapshots written atomically, plus a write-ahead journal so every
//!   acknowledged ingest survives a crash; [`FaultPlan`] drives
//!   deterministic fault-injection tests of exactly those guarantees.
//!
//! The intended flow for a brand-new (zero-citation) paper: CRF sentence
//! labels → sentence encoding → SEM subspace pooling → [`PaperEmbedder::embed_new`]
//! → [`QueryEngine::ingest_vector`] — after which the paper is immediately
//! retrievable, no retraining or index rebuild involved.
//!
//! Failures are typed end-to-end: every fallible serve operation returns
//! [`ServeError`] (corrupt snapshot, dimension mismatch, deadline
//! exceeded, journal replay failure, …) instead of panicking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod embed;
pub mod engine;
pub mod error;
pub mod fault;
pub mod index;
pub mod store;

pub use cache::LruCache;
pub use embed::{NpRecContext, PaperEmbedder};
pub use engine::{
    DegradeReason, EngineConfig, IngestAck, QueryEngine, QueryRequest, QueryResponse,
    RecoveryStats, StatsSnapshot,
};
pub use error::ServeError;
pub use fault::{CrashPoint, FaultPlan};
pub use index::{AnnIndex, Hit, IndexConfig};
pub use store::{Durability, IndexStore, Recovery, VerifyReport};
