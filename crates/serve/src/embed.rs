//! Composition of the served paper vectors.
//!
//! A paper's index vector is the concatenation of
//!
//! * the SEM subspace embeddings `c_p^0 ‖ c_p^1 ‖ c_p^2` (always), and
//! * the NPRec interest and influence representations `v⃗_p ‖ v⃖_p`
//!   (when an NPRec model is attached).
//!
//! A brand-new paper at ingestion time has no node in the heterogeneous
//! graph and no trained entity embedding, so its NPRec block is zero — the
//! honest cold-start representation: similarity to it is carried entirely
//! by the text path, exactly the signal the paper argues is available for a
//! zero-citation paper.

use rayon::prelude::*;
use sem_core::nprec::{Direction, TextVecs};
use sem_core::{NpRecModel, SemModel, TextPipeline};
use sem_corpus::{Corpus, Paper, PaperId, NUM_SUBSPACES};
use sem_graph::HeteroGraph;

use crate::facet::FacetLayout;

/// The network-side context needed to add NPRec blocks to index vectors.
pub struct NpRecContext<'a> {
    /// Trained recommendation model.
    pub model: &'a NpRecModel,
    /// The heterogeneous graph the model was trained on.
    pub graph: &'a HeteroGraph,
    /// Per-paper SEM subspace embeddings (`c_p^k`), as used in training.
    pub text: &'a TextVecs,
}

/// Turns papers into index vectors.
pub struct PaperEmbedder<'a> {
    pipeline: &'a TextPipeline,
    sem: &'a SemModel,
    nprec: Option<NpRecContext<'a>>,
}

impl<'a> PaperEmbedder<'a> {
    /// A text-only embedder (SEM blocks only).
    pub fn new(pipeline: &'a TextPipeline, sem: &'a SemModel) -> Self {
        PaperEmbedder { pipeline, sem, nprec: None }
    }

    /// Adds the NPRec interest/influence blocks.
    pub fn with_nprec(mut self, ctx: NpRecContext<'a>) -> Self {
        self.nprec = Some(ctx);
        self
    }

    /// Width of produced vectors.
    pub fn dim(&self) -> usize {
        let text = NUM_SUBSPACES * self.sem.embed_dim();
        let net = self.nprec.as_ref().map_or(0, |c| 2 * c.model.vec_dim());
        text + net
    }

    /// The facet layout of produced vectors: one segment per SEM subspace
    /// (`bg` / `method` / `result`), plus a trailing `nprec` segment
    /// covering the interest+influence block when an NPRec context is
    /// attached. [`PaperEmbedder::embed_indexed`] is always the in-order
    /// concatenation of exactly these segments.
    pub fn layout(&self) -> FacetLayout {
        match &self.nprec {
            Some(ctx) => FacetLayout::sem_nprec(self.sem.embed_dim(), 2 * ctx.model.vec_dim()),
            None => FacetLayout::sem(self.sem.embed_dim()),
        }
    }

    /// Per-facet segments of a corpus paper's index vector, in
    /// [`PaperEmbedder::layout`] order — the primary export; the fused
    /// vector is derived from it by concatenation. The SEM segments come
    /// from the precomputed `c_p^k` when an NPRec context is attached (the
    /// exact vectors the model trained against), otherwise from a fresh
    /// forward pass.
    pub fn embed_segments(&self, corpus: &Corpus, p: PaperId) -> Vec<Vec<f32>> {
        match &self.nprec {
            Some(ctx) => {
                let mut segments: Vec<Vec<f32>> =
                    (0..NUM_SUBSPACES).map(|k| ctx.text[p.index()][k].clone()).collect();
                let mut net = self.paper_dir(ctx, p, Direction::Interest);
                net.extend(self.paper_dir(ctx, p, Direction::Influence));
                segments.push(net);
                segments
            }
            None => self.sem.embed_paper(self.pipeline, corpus.paper(p)),
        }
    }

    /// Index vector of a corpus paper: the fused view, i.e. the in-order
    /// concatenation of [`PaperEmbedder::embed_segments`].
    pub fn embed_indexed(&self, corpus: &Corpus, p: PaperId) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim());
        for segment in self.embed_segments(corpus, p) {
            out.extend(segment);
        }
        out
    }

    fn paper_dir(&self, ctx: &NpRecContext<'a>, p: PaperId, dir: Direction) -> Vec<f32> {
        ctx.model.paper_vec(ctx.graph, Some(ctx.text), p, dir)
    }

    /// Index vector of a paper outside the corpus (ingestion path): CRF
    /// labels + sentence encoding + SEM subspace pooling; the NPRec block
    /// is zeroed (no graph node exists yet).
    pub fn embed_new(&self, paper: &Paper) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim());
        for c in self.sem.embed_paper(self.pipeline, paper) {
            out.extend(c);
        }
        out.resize(self.dim(), 0.0);
        out
    }

    /// Index vectors for a whole corpus, rayon-parallel, in paper order.
    pub fn embed_corpus(&self, corpus: &Corpus) -> Vec<Vec<f32>> {
        (0..corpus.papers.len())
            .into_par_iter()
            .map(|i| self.embed_indexed(corpus, PaperId::from(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem_core::{NpRecConfig, PipelineConfig, SemConfig};
    use sem_corpus::CorpusConfig;

    fn small() -> (Corpus, TextPipeline, SemModel) {
        let corpus =
            Corpus::generate(CorpusConfig { n_papers: 60, n_authors: 25, ..Default::default() });
        let pipeline = TextPipeline::fit(
            &corpus,
            PipelineConfig { word_dim: 12, sentence_dim: 16, sgns_epochs: 1, ..Default::default() },
        );
        // untrained weights embed fine; training is orthogonal to shape
        let sem = SemModel::new(SemConfig { input_dim: 16, hidden: 10, ..Default::default() });
        (corpus, pipeline, sem)
    }

    #[test]
    fn text_only_vectors_have_declared_dim() {
        let (corpus, pipeline, sem) = small();
        let emb = PaperEmbedder::new(&pipeline, &sem);
        assert_eq!(emb.dim(), NUM_SUBSPACES * sem.embed_dim());
        let all = emb.embed_corpus(&corpus);
        assert_eq!(all.len(), 60);
        assert!(all.iter().all(|v| v.len() == emb.dim()));
        assert!(all[0].iter().any(|x| *x != 0.0));
    }

    #[test]
    fn nprec_context_appends_both_directions() {
        let (corpus, pipeline, sem) = small();
        let labels = pipeline.label_corpus(&corpus);
        let text = sem.embed_corpus(&pipeline, &corpus, &labels);
        let graph = HeteroGraph::from_corpus(&corpus, None);
        let model = NpRecModel::new(
            graph.n_nodes(),
            NpRecConfig {
                embed_dim: 6,
                text_dim: sem.embed_dim(),
                neighbors: 3,
                depth: 1,
                ..Default::default()
            },
        );
        let emb = PaperEmbedder::new(&pipeline, &sem).with_nprec(NpRecContext {
            model: &model,
            graph: &graph,
            text: &text,
        });
        let expect = NUM_SUBSPACES * sem.embed_dim() + 2 * model.vec_dim();
        assert_eq!(emb.dim(), expect);
        let v = emb.embed_indexed(&corpus, PaperId(4));
        assert_eq!(v.len(), expect);
        // the SEM prefix matches the precomputed c_p^k
        assert_eq!(&v[..sem.embed_dim()], text[4][0].as_slice());
        // interest and influence blocks differ for a connected paper
        let d = model.vec_dim();
        let start = NUM_SUBSPACES * sem.embed_dim();
        assert_ne!(&v[start..start + d], &v[start + d..]);
    }

    #[test]
    fn segments_match_layout_and_concatenate_to_the_fused_vector() {
        let (corpus, pipeline, sem) = small();
        let emb = PaperEmbedder::new(&pipeline, &sem);
        let layout = emb.layout();
        assert_eq!(layout.names(), ["bg", "method", "result"]);
        assert_eq!(layout.dim(), emb.dim());
        let segments = emb.embed_segments(&corpus, PaperId(7));
        assert_eq!(segments.len(), layout.len());
        for (seg, dim) in segments.iter().zip(layout.dims()) {
            assert_eq!(seg.len(), *dim);
        }
        let fused: Vec<f32> = segments.concat();
        assert_eq!(fused, emb.embed_indexed(&corpus, PaperId(7)), "fused view must be exact");

        // with NPRec attached, the trailing segment is the network block
        let labels = pipeline.label_corpus(&corpus);
        let text = sem.embed_corpus(&pipeline, &corpus, &labels);
        let graph = HeteroGraph::from_corpus(&corpus, None);
        let model = NpRecModel::new(
            graph.n_nodes(),
            NpRecConfig {
                embed_dim: 6,
                text_dim: sem.embed_dim(),
                neighbors: 3,
                depth: 1,
                ..Default::default()
            },
        );
        let emb = PaperEmbedder::new(&pipeline, &sem).with_nprec(NpRecContext {
            model: &model,
            graph: &graph,
            text: &text,
        });
        let layout = emb.layout();
        assert_eq!(layout.names(), ["bg", "method", "result", "nprec"]);
        assert_eq!(layout.dim(), emb.dim());
        let segments = emb.embed_segments(&corpus, PaperId(7));
        assert_eq!(segments.concat(), emb.embed_indexed(&corpus, PaperId(7)));
        assert_eq!(segments[3].len(), 2 * model.vec_dim());
    }

    #[test]
    fn new_paper_gets_zero_network_block() {
        let (corpus, pipeline, sem) = small();
        let labels = pipeline.label_corpus(&corpus);
        let text = sem.embed_corpus(&pipeline, &corpus, &labels);
        let graph = HeteroGraph::from_corpus(&corpus, None);
        let model = NpRecModel::new(
            graph.n_nodes(),
            NpRecConfig {
                embed_dim: 6,
                text_dim: sem.embed_dim(),
                neighbors: 3,
                depth: 1,
                ..Default::default()
            },
        );
        let emb = PaperEmbedder::new(&pipeline, &sem).with_nprec(NpRecContext {
            model: &model,
            graph: &graph,
            text: &text,
        });
        // treat an existing paper's text as a fresh submission
        let v = emb.embed_new(&corpus.papers[9]);
        assert_eq!(v.len(), emb.dim());
        let start = NUM_SUBSPACES * sem.embed_dim();
        assert!(v[..start].iter().any(|x| *x != 0.0));
        assert!(v[start..].iter().all(|x| *x == 0.0));
    }
}
