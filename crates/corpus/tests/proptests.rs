//! Property tests: generator invariants must hold for arbitrary small
//! configurations, not just the defaults.

use proptest::prelude::*;
use sem_corpus::{Corpus, CorpusConfig, DisciplineProfile, Subspace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generator_invariants_hold(
        seed in 0u64..1000,
        n_papers in 40usize..160,
        n_authors in 10usize..60,
        n_disc in 1usize..3,
        year_span in 1u16..8,
    ) {
        let disciplines = (0..n_disc).map(DisciplineProfile::generic).collect();
        let corpus = Corpus::generate(CorpusConfig {
            n_papers,
            n_authors,
            disciplines,
            years: (2010, 2010 + year_span),
            seed,
            ..Default::default()
        });

        prop_assert_eq!(corpus.papers.len(), n_papers);

        for p in &corpus.papers {
            // ids dense, refs strictly older (by id), years in range
            prop_assert!((2010..=2010 + year_span).contains(&p.year));
            for r in &p.references {
                prop_assert!(r.index() < p.id.index());
                prop_assert!(corpus.paper(*r).year <= p.year);
            }
            // no duplicate references
            let mut sorted = p.references.clone();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), p.references.len());
            // abstract structure: starts background, ends result, monotone
            let labels = p.sentence_labels();
            prop_assert!(labels.len() >= 5);
            prop_assert_eq!(labels[0], Subspace::Background);
            prop_assert_eq!(*labels.last().unwrap(), Subspace::Result);
            let mut max_seen = 0;
            for l in &labels {
                prop_assert!(l.index() >= max_seen);
                max_seen = l.index();
            }
            // innovation bounded
            prop_assert!(p.innovation.iter().all(|&v| (0.0..=1.0).contains(&v)));
            // author list non-empty and unique
            prop_assert!(!p.authors.is_empty());
            let mut a = p.authors.clone();
            a.sort_unstable();
            a.dedup();
            prop_assert_eq!(a.len(), p.authors.len());
        }

        // reverse citation index is consistent
        let forward: usize = corpus.papers.iter().map(|p| p.references.len()).sum();
        let backward: usize = corpus
            .papers
            .iter()
            .map(|p| corpus.cited_by(p.id).len())
            .sum();
        prop_assert_eq!(forward, backward);

        // author -> paper index is consistent
        for a in &corpus.authors {
            for p in &a.papers {
                prop_assert!(corpus.paper(*p).authors.contains(&a.id));
            }
        }
    }

    #[test]
    fn same_seed_same_corpus(seed in 0u64..50) {
        let cfg = || CorpusConfig { n_papers: 60, n_authors: 25, seed, ..Default::default() };
        let a = Corpus::generate(cfg());
        let b = Corpus::generate(cfg());
        for (pa, pb) in a.papers.iter().zip(&b.papers) {
            prop_assert_eq!(&pa.title, &pb.title);
            prop_assert_eq!(&pa.references, &pb.references);
            prop_assert_eq!(pa.citations_received, pb.citations_received);
        }
    }

    #[test]
    fn different_seeds_differ(seed in 0u64..50) {
        let a = Corpus::generate(CorpusConfig { n_papers: 60, n_authors: 25, seed, ..Default::default() });
        let b = Corpus::generate(CorpusConfig { n_papers: 60, n_authors: 25, seed: seed + 1, ..Default::default() });
        let a_cites: Vec<u32> = a.papers.iter().map(|p| p.citations_received).collect();
        let b_cites: Vec<u32> = b.papers.iter().map(|p| p.citations_received).collect();
        prop_assert_ne!(a_cites, b_cites);
    }
}
