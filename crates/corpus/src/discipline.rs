//! Discipline profiles: how each scientific field's innovation translates to
//! citations, and the field's synthetic vocabulary.
//!
//! The paper finds (Tab. I, Fig. 3) that computer science rewards method and
//! result innovation, pharmacology/medicine rewards result innovation, and
//! social science rewards background/method innovation. The generator plants
//! those discipline-specific weights so a faithful reimplementation of the
//! subspace analysis can rediscover them.

use crate::ids::{Subspace, NUM_SUBSPACES};

/// Per-sentence-role cue words shared by all disciplines — the rhetorical
/// surface the CRF sentence-function labeler learns from.
pub fn cue_words(subspace: Subspace) -> &'static [&'static str] {
    match subspace {
        Subspace::Background => &[
            "problem",
            "existing",
            "prior",
            "challenge",
            "motivation",
            "recent",
            "however",
            "important",
            "literature",
            "growing",
        ],
        Subspace::Method => &[
            "propose",
            "method",
            "approach",
            "algorithm",
            "model",
            "framework",
            "design",
            "introduce",
            "technique",
            "formulate",
        ],
        Subspace::Result => &[
            "experiments",
            "results",
            "show",
            "improve",
            "outperform",
            "evaluation",
            "accuracy",
            "demonstrate",
            "significant",
            "achieve",
        ],
    }
}

/// Connective filler tokens shared across all disciplines and roles.
pub const FILLER: &[&str] = &["the", "of", "for", "with", "based", "on", "and", "in", "a"];

const SYLLABLES: &[&str] = &[
    "ra", "ne", "ti", "lo", "ka", "mi", "su", "ve", "do", "pa", "zi", "bu", "fe", "go", "hy", "qu",
    "sta", "cro", "plex", "tron",
];

/// A scientific discipline: its citation economics and vocabulary generator.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct DisciplineProfile {
    /// Display name.
    pub name: String,
    /// How strongly innovation in each subspace drives citations — the
    /// planted ground truth the paper's Tab. I / Fig. 3 analyses recover.
    pub citation_weights: [f64; NUM_SUBSPACES],
    /// Vocabulary stem keeping disciplines lexically disjoint.
    pub stem: String,
}

impl DisciplineProfile {
    /// Computer science: method-driven innovation (highest SEM-M in Tab. I).
    pub fn computer_science() -> Self {
        DisciplineProfile {
            name: "Computer Science".into(),
            citation_weights: [0.2, 1.4, 0.8],
            stem: "cs".into(),
        }
    }

    /// Medicine/pharmacology: result-driven innovation (highest SEM-R).
    pub fn medicine() -> Self {
        DisciplineProfile {
            name: "Medicine".into(),
            citation_weights: [0.25, 0.25, 1.4],
            stem: "med".into(),
        }
    }

    /// Social science: background/method-driven innovation.
    pub fn sociology() -> Self {
        DisciplineProfile {
            name: "Sociology".into(),
            citation_weights: [1.2, 1.0, 0.2],
            stem: "soc".into(),
        }
    }

    /// A generic numbered discipline (for the 27-class Scopus preset).
    pub fn generic(i: usize) -> Self {
        // rotate the emphasis across subspaces deterministically
        let patterns: [[f64; 3]; 3] = [[1.1, 0.5, 0.4], [0.4, 1.1, 0.5], [0.5, 0.4, 1.1]];
        DisciplineProfile {
            name: format!("Discipline-{i}"),
            citation_weights: patterns[i % 3],
            stem: format!("d{i}"),
        }
    }

    /// Deterministic pseudo-word `idx` of topic `topic`'s subspace-`k` pool.
    pub fn topic_word(&self, topic: usize, subspace: Subspace, idx: usize) -> String {
        self.make_word(0x7_0000 + topic * 64 + subspace.index() * 8192, idx)
    }

    /// Deterministic pseudo-word from the discipline's *frontier* pool for a
    /// subspace: the fresh terminology innovative papers introduce.
    pub fn frontier_word(&self, subspace: Subspace, idx: usize) -> String {
        self.make_word(0xF_0000 + subspace.index() * 65536, idx)
    }

    fn make_word(&self, salt: usize, idx: usize) -> String {
        // small LCG over (stem, salt, idx) -> 3 syllables
        let mut state = salt
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(idx.wrapping_mul(0x85eb_ca6b))
            .wrapping_add(self.stem.bytes().map(usize::from).sum::<usize>() << 16);
        let mut w = self.stem.clone();
        for _ in 0..3 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            w.push_str(SYLLABLES[(state >> 33) % SYLLABLES.len()]);
        }
        // disambiguate collisions across large pools
        w.push_str(&format!("{}", idx % 97));
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_have_expected_emphasis() {
        let cs = DisciplineProfile::computer_science();
        assert!(cs.citation_weights[1] > cs.citation_weights[0]); // method > background
        let med = DisciplineProfile::medicine();
        assert!(med.citation_weights[2] > med.citation_weights[1]); // result dominates
        let soc = DisciplineProfile::sociology();
        assert!(soc.citation_weights[0] > soc.citation_weights[2]); // background > result
    }

    #[test]
    fn words_are_deterministic() {
        let cs = DisciplineProfile::computer_science();
        assert_eq!(cs.topic_word(3, Subspace::Method, 5), cs.topic_word(3, Subspace::Method, 5));
        assert_eq!(cs.frontier_word(Subspace::Result, 9), cs.frontier_word(Subspace::Result, 9));
    }

    #[test]
    fn pools_are_distinct() {
        let cs = DisciplineProfile::computer_science();
        let med = DisciplineProfile::medicine();
        // different disciplines never share words (stems differ)
        assert_ne!(cs.topic_word(0, Subspace::Method, 0), med.topic_word(0, Subspace::Method, 0));
        // topic vs frontier pools differ
        assert_ne!(cs.topic_word(0, Subspace::Method, 0), cs.frontier_word(Subspace::Method, 0));
        // indices differ
        assert_ne!(cs.topic_word(0, Subspace::Method, 0), cs.topic_word(0, Subspace::Method, 1));
    }

    #[test]
    fn words_start_with_stem() {
        let soc = DisciplineProfile::sociology();
        assert!(soc.topic_word(1, Subspace::Background, 2).starts_with("soc"));
        assert!(soc.frontier_word(Subspace::Background, 2).starts_with("soc"));
    }

    #[test]
    fn cue_words_cover_all_subspaces() {
        for s in Subspace::ALL {
            assert!(cue_words(s).len() >= 5);
        }
        // disjoint pools
        for w in cue_words(Subspace::Background) {
            assert!(!cue_words(Subspace::Method).contains(w));
            assert!(!cue_words(Subspace::Result).contains(w));
        }
    }

    #[test]
    fn generic_disciplines_rotate_emphasis() {
        let a = DisciplineProfile::generic(0);
        let b = DisciplineProfile::generic(1);
        assert_ne!(a.citation_weights, b.citation_weights);
        assert_ne!(a.stem, b.stem);
    }
}
