//! Dataset presets mirroring the paper's Tab. III datasets at laptop scale.
//!
//! | Preset | Substitutes for | Character |
//! |---|---|---|
//! | [`acm_like`] | ACM Digital Library | single-discipline CS, 11 CCS fields, venues + affiliations, 2000–2019 |
//! | [`scopus_like`] | Scopus | 27 disciplines (CS, medicine, sociology + 24 generic), no affiliations, 2008–2017 |
//! | [`pubmed_like`] | PubMedRCT | medicine-only, used to pretrain the sentence-function CRF (gold tags) |
//! | [`patent_like`] | USPTO patents (PT) | low-resource: authors + citations only |
//!
//! `scale == 1` targets second-scale experiment runtimes; the experiment
//! harness uses small scales, tests use fractions via explicit configs.

use crate::discipline::DisciplineProfile;
use crate::generator::CorpusConfig;

/// ACM-DL-like preset: computer science with 11 top-level CCS fields.
pub fn acm_like(scale: usize) -> CorpusConfig {
    let scale = scale.max(1);
    CorpusConfig {
        name: "ACM-like".into(),
        n_papers: 3000 * scale,
        n_authors: 900 * scale,
        disciplines: vec![DisciplineProfile::computer_science()],
        fields_per_discipline: 11,
        topics_per_field: 3,
        venues_per_discipline: 24,
        n_affiliations: Some(60),
        years: (2000, 2019),
        refs_per_paper: (6, 14),
        with_keywords: true,
        with_categories: true,
        innovation_mean: 0.25,
        citation_base: 8.0,
        topic_pool: 24,
        seed: 0xac3,
    }
}

/// Scopus-like preset: 27 disciplines; the first three are the paper's
/// analysed fields (computer science, medicine, sociology).
pub fn scopus_like(scale: usize) -> CorpusConfig {
    let scale = scale.max(1);
    let mut disciplines = vec![
        DisciplineProfile::computer_science(),
        DisciplineProfile::medicine(),
        DisciplineProfile::sociology(),
    ];
    disciplines.extend((3..27).map(DisciplineProfile::generic));
    CorpusConfig {
        name: "Scopus-like".into(),
        n_papers: 2700 * scale,
        n_authors: 1000 * scale,
        disciplines,
        fields_per_discipline: 1,
        topics_per_field: 2,
        venues_per_discipline: 3,
        n_affiliations: None,
        years: (2008, 2017),
        refs_per_paper: (5, 12),
        with_keywords: true,
        with_categories: true,
        innovation_mean: 0.25,
        citation_base: 8.0,
        topic_pool: 24,
        seed: 0x5c09,
    }
}

/// Scopus-like preset restricted to the three analysed disciplines — the
/// working set for the Tab. I / Fig. 2 / Fig. 3 experiments (dense enough
/// to give each discipline a real population at small scale).
pub fn scopus_three_disciplines(scale: usize) -> CorpusConfig {
    let scale = scale.max(1);
    CorpusConfig {
        name: "Scopus-like(CS/Med/Soc)".into(),
        n_papers: 1800 * scale,
        n_authors: 600 * scale,
        disciplines: vec![
            DisciplineProfile::computer_science(),
            DisciplineProfile::medicine(),
            DisciplineProfile::sociology(),
        ],
        fields_per_discipline: 2,
        topics_per_field: 3,
        venues_per_discipline: 6,
        n_affiliations: None,
        years: (2008, 2017),
        refs_per_paper: (5, 12),
        with_keywords: true,
        with_categories: true,
        innovation_mean: 0.25,
        citation_base: 8.0,
        topic_pool: 24,
        seed: 0x5c1d,
    }
}

/// PubMedRCT-like preset: medicine with gold sentence-function tags, used to
/// pretrain the CRF labeler (the paper uses the real PubMedRCT the same way).
pub fn pubmed_like(scale: usize) -> CorpusConfig {
    let scale = scale.max(1);
    CorpusConfig {
        name: "PubMedRCT-like".into(),
        n_papers: 600 * scale,
        n_authors: 250 * scale,
        disciplines: vec![DisciplineProfile::medicine()],
        fields_per_discipline: 3,
        topics_per_field: 3,
        venues_per_discipline: 8,
        n_affiliations: None,
        years: (2008, 2017),
        refs_per_paper: (4, 10),
        with_keywords: true,
        with_categories: true,
        innovation_mean: 0.25,
        citation_base: 8.0,
        topic_pool: 24,
        seed: 0x9b3d,
    }
}

/// USPTO-patent-like preset (PT): authors and citations only — no venues,
/// keywords, categories or affiliations (the paper's low-resource test).
///
/// Deviation from the paper: the real PT splits train/test by month within
/// 2017; year resolution here makes that 2016 (train) vs 2017 (test).
pub fn patent_like(scale: usize) -> CorpusConfig {
    let scale = scale.max(1);
    CorpusConfig {
        name: "PT-like".into(),
        n_papers: 1500 * scale,
        n_authors: 600 * scale,
        disciplines: vec![DisciplineProfile::generic(0)],
        fields_per_discipline: 4,
        topics_per_field: 3,
        venues_per_discipline: 0,
        n_affiliations: None,
        years: (2016, 2017),
        refs_per_paper: (4, 10),
        with_keywords: false,
        with_categories: false,
        innovation_mean: 0.25,
        citation_base: 8.0,
        topic_pool: 24,
        seed: 0x9a7e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Corpus;

    #[test]
    fn preset_shapes() {
        let acm = acm_like(1);
        assert_eq!(acm.disciplines.len(), 1);
        assert_eq!(acm.fields_per_discipline, 11);
        let sc = scopus_like(1);
        assert_eq!(sc.disciplines.len(), 27);
        assert!(sc.n_affiliations.is_none());
        let pt = patent_like(1);
        assert!(!pt.with_keywords && !pt.with_categories);
        assert_eq!(pt.venues_per_discipline, 0);
        let pm = pubmed_like(1);
        assert_eq!(pm.disciplines[0].name, "Medicine");
    }

    #[test]
    fn scale_multiplies() {
        assert_eq!(acm_like(2).n_papers, 2 * acm_like(1).n_papers);
        assert_eq!(patent_like(3).n_authors, 3 * patent_like(1).n_authors);
        // scale 0 clamps to 1
        assert_eq!(acm_like(0).n_papers, acm_like(1).n_papers);
    }

    #[test]
    fn small_scopus_three_generates() {
        let mut cfg = scopus_three_disciplines(1);
        cfg.n_papers = 240;
        cfg.n_authors = 90;
        let c = Corpus::generate(cfg);
        assert_eq!(c.config.disciplines.len(), 3);
        let s = c.stats();
        assert_eq!(s.classes, 3);
        assert_eq!(s.affiliations, 0);
    }
}
