//! The generative process that produces a [`Corpus`].
//!
//! See the crate docs for the planted structure. The process, per paper in
//! year order:
//!
//! 1. draw a topic (category-tree leaf) and an author team from that topic's
//!    community;
//! 2. draw latent per-subspace innovation (exponential — most papers are
//!    incremental, few are breakthroughs);
//! 3. write the abstract: background → method → result sentences mixing
//!    role cue words, topic vocabulary and — proportionally to innovation —
//!    fresh *frontier* vocabulary unique to the paper;
//! 4. choose references among earlier papers, preferring the same topic,
//!    high in-degree (preferential attachment) and high latent quality;
//! 5. assign the ground-truth citation count from a Poisson whose rate is
//!    the discipline-weighted exponential of the innovation vector, scaled
//!    by venue prestige and author authority, plus the in-graph in-degree.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Poisson};

use crate::discipline::{cue_words, DisciplineProfile, FILLER};
use crate::ids::{AuthorId, PaperId, Subspace, VenueId, NUM_SUBSPACES};
use crate::paper::{Author, Paper, Sentence, Venue};
use crate::tree::CategoryTree;

/// Configuration of the generative process.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CorpusConfig {
    /// Dataset display name (e.g. `"ACM-like"`).
    pub name: String,
    /// Number of papers to generate.
    pub n_papers: usize,
    /// Number of authors in the community.
    pub n_authors: usize,
    /// Discipline profiles; level-1 tree nodes correspond to these.
    pub disciplines: Vec<DisciplineProfile>,
    /// Top fields per discipline (level-2 branching).
    pub fields_per_discipline: usize,
    /// Leaf topics per field (level-3 branching).
    pub topics_per_field: usize,
    /// Venues per discipline (`0` disables venues — patent preset).
    pub venues_per_discipline: usize,
    /// Number of affiliations (`None` disables — Scopus/patent presets).
    pub n_affiliations: Option<usize>,
    /// Inclusive publication-year range.
    pub years: (u16, u16),
    /// Reference-list length range (inclusive).
    pub refs_per_paper: (usize, usize),
    /// Whether papers carry keywords.
    pub with_keywords: bool,
    /// Whether papers carry category-tree tags.
    pub with_categories: bool,
    /// Mean of the exponential innovation prior (higher → more breakthroughs).
    pub innovation_mean: f64,
    /// Base Poisson rate for ground-truth citations.
    pub citation_base: f64,
    /// Words per topic pool (per subspace).
    pub topic_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            name: "default".into(),
            n_papers: 1200,
            n_authors: 400,
            disciplines: vec![DisciplineProfile::computer_science()],
            fields_per_discipline: 4,
            topics_per_field: 3,
            venues_per_discipline: 8,
            n_affiliations: Some(40),
            years: (2008, 2017),
            refs_per_paper: (6, 14),
            with_keywords: true,
            with_categories: true,
            innovation_mean: 0.25,
            citation_base: 8.0,
            topic_pool: 24,
            seed: 0xc0_95,
        }
    }
}

/// A fully generated synthetic corpus.
pub struct Corpus {
    /// The configuration it was generated from.
    pub config: CorpusConfig,
    /// The hierarchical classification tree (level 1 = disciplines).
    pub tree: CategoryTree,
    /// All papers, id-dense and sorted by year.
    pub papers: Vec<Paper>,
    /// All authors, id-dense.
    pub authors: Vec<Author>,
    /// All venues, id-dense (empty when disabled).
    pub venues: Vec<Venue>,
    cited_by: Vec<Vec<PaperId>>,
}

impl Corpus {
    /// Runs the generative process.
    ///
    /// # Panics
    /// Panics on degenerate configs (no papers, no authors, no disciplines,
    /// inverted year range).
    pub fn generate(config: CorpusConfig) -> Self {
        assert!(config.n_papers > 0, "n_papers must be positive");
        assert!(config.n_authors > 0, "n_authors must be positive");
        assert!(!config.disciplines.is_empty(), "need at least one discipline");
        assert!(config.years.0 <= config.years.1, "inverted year range");
        let mut rng = StdRng::seed_from_u64(config.seed);

        let tree = CategoryTree::build(&[
            config.disciplines.len(),
            config.fields_per_discipline,
            config.topics_per_field,
        ]);
        let n_topics = tree.leaves().len();
        let topics_per_discipline = config.fields_per_discipline * config.topics_per_field;

        // venues
        let mut venues = Vec::new();
        for (d, prof) in config.disciplines.iter().enumerate() {
            for v in 0..config.venues_per_discipline {
                venues.push(Venue {
                    id: VenueId::from(venues.len()),
                    name: format!("{}-venue-{v}", prof.stem),
                    discipline: d,
                    prestige: rng.gen::<f32>(),
                });
            }
        }

        // authors with home topics and authority
        let mut authors: Vec<Author> = (0..config.n_authors)
            .map(|i| Author {
                id: AuthorId::from(i),
                papers: Vec::new(),
                authority: rng.gen::<f32>().powf(2.0), // skewed: few authorities
                home_topic: rng.gen_range(0..n_topics),
                affiliation: config.n_affiliations.map(|n| rng.gen_range(0..n)),
            })
            .collect();
        // per-topic author communities
        let mut community: Vec<Vec<usize>> = vec![Vec::new(); n_topics];
        for (i, a) in authors.iter().enumerate() {
            community[a.home_topic].push(i);
        }
        for (t, c) in community.iter_mut().enumerate() {
            if c.is_empty() {
                // guarantee every topic has at least one author
                c.push(t % config.n_authors);
            }
        }

        // years sorted ascending so references can look back
        let mut years: Vec<u16> =
            (0..config.n_papers).map(|_| rng.gen_range(config.years.0..=config.years.1)).collect();
        years.sort_unstable();

        let mut papers: Vec<Paper> = Vec::with_capacity(config.n_papers);
        let mut cited_by: Vec<Vec<PaperId>> = vec![Vec::new(); config.n_papers];
        let mut in_degree = vec![0u32; config.n_papers];
        let mut quality = vec![0.0f64; config.n_papers];
        let mut innov_part = vec![0.0f64; config.n_papers];
        let mut recognized = vec![0.0f64; config.n_papers];
        let mut by_topic: Vec<Vec<usize>> = vec![Vec::new(); n_topics];

        for i in 0..config.n_papers {
            let topic = rng.gen_range(0..n_topics);
            let discipline_idx = topic / topics_per_discipline;
            let prof = &config.disciplines[discipline_idx];
            let leaf = tree.leaves()[topic];

            // innovation: exponential, clipped to [0, 1]
            let mut innovation = [0.0f32; NUM_SUBSPACES];
            for v in &mut innovation {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                *v = ((-u.ln()) * config.innovation_mean).min(1.0) as f32;
            }

            // author team from the topic community (with occasional outsiders)
            let team_size = rng.gen_range(1..=4usize);
            let mut team: Vec<AuthorId> = Vec::with_capacity(team_size);
            for _ in 0..team_size {
                let pool = if rng.gen::<f32>() < 0.85 {
                    &community[topic]
                } else {
                    &community[rng.gen_range(0..n_topics)]
                };
                let pick = AuthorId::from(pool[rng.gen_range(0..pool.len())]);
                if !team.contains(&pick) {
                    team.push(pick);
                }
            }

            // venue: prestige loosely follows team authority
            let venue = if config.venues_per_discipline > 0 {
                let lo = discipline_idx * config.venues_per_discipline;
                let hi = lo + config.venues_per_discipline;
                let team_auth =
                    team.iter().map(|a| authors[a.index()].authority).fold(0.0f32, f32::max);
                let scored: Vec<(usize, f32)> = (lo..hi)
                    .map(|v| {
                        let s = -(venues[v].prestige - team_auth).abs() + rng.gen::<f32>() * 0.5;
                        (v, s)
                    })
                    .collect();
                let pick = scored
                    .into_iter()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("non-empty venue range")
                    .0;
                Some(VenueId::from(pick))
            } else {
                None
            };

            let sentences = gen_abstract(prof, topic, innovation, i, config.topic_pool, &mut rng);
            let keywords = if config.with_keywords {
                gen_keywords(prof, topic, innovation, i, config.topic_pool, &mut rng)
            } else {
                Vec::new()
            };
            let title = format!(
                "{} {} {}",
                prof.topic_word(topic, Subspace::Method, rng.gen_range(0..config.topic_pool)),
                prof.topic_word(topic, Subspace::Background, rng.gen_range(0..config.topic_pool)),
                i
            );

            // latent quality drives both the reference graph and citations.
            // It splits into an *innovation* part (only recognisable with
            // hindsight — see the delayed-recognition damping in reference
            // sampling) and a *recognised* part (venue prestige and author
            // authority, visible the day a paper appears).
            let w = prof.citation_weights;
            let innov_score: f64 = (0..NUM_SUBSPACES).map(|k| w[k] * innovation[k] as f64).sum();
            let prestige = venue.map(|v| venues[v.index()].prestige).unwrap_or(0.5) as f64;
            let authority =
                team.iter().map(|a| authors[a.index()].authority).fold(0.0f32, f32::max) as f64;
            innov_part[i] = (innov_score * 2.0).exp();
            recognized[i] = (0.5 + prestige) * (0.5 + authority);
            quality[i] = innov_part[i] * recognized[i];

            // references among earlier papers
            let n_refs = rng.gen_range(config.refs_per_paper.0..=config.refs_per_paper.1);
            let refs = sample_references(
                i,
                topic,
                discipline_idx,
                topics_per_discipline,
                n_topics,
                n_refs,
                years[i],
                &years,
                &by_topic,
                &in_degree,
                &innov_part,
                &recognized,
                &mut rng,
            );
            for &r in &refs {
                in_degree[r.index()] += 1;
                cited_by[r.index()].push(PaperId::from(i));
            }

            for a in &team {
                authors[a.index()].papers.push(PaperId::from(i));
            }
            by_topic[topic].push(i);

            papers.push(Paper {
                id: PaperId::from(i),
                title,
                sentences,
                keywords,
                references: refs,
                authors: team,
                venue,
                year: years[i],
                discipline: discipline_idx,
                category: config.with_categories.then_some(leaf),
                innovation,
                citations_received: 0, // filled below
            });
        }

        // ground-truth citations: in-graph citations plus external Poisson
        for i in 0..config.n_papers {
            let lambda = config.citation_base * quality[i];
            let external =
                Poisson::new(lambda.max(1e-9)).expect("positive lambda").sample(&mut rng) as u32;
            papers[i].citations_received = in_degree[i] + external;
        }

        Corpus { config, tree, papers, authors, venues, cited_by }
    }

    /// The paper with the given id.
    pub fn paper(&self, id: PaperId) -> &Paper {
        &self.papers[id.index()]
    }

    /// The author with the given id.
    pub fn author(&self, id: AuthorId) -> &Author {
        &self.authors[id.index()]
    }

    /// Papers citing `id` (reverse reference index).
    pub fn cited_by(&self, id: PaperId) -> &[PaperId] {
        &self.cited_by[id.index()]
    }

    /// Ids of papers published in `[from, to]` inclusive.
    pub fn papers_in_years(&self, from: u16, to: u16) -> Vec<PaperId> {
        self.papers.iter().filter(|p| (from..=to).contains(&p.year)).map(|p| p.id).collect()
    }

    /// The discipline profile of a paper.
    pub fn discipline_of(&self, p: &Paper) -> &DisciplineProfile {
        &self.config.disciplines[p.discipline]
    }

    /// Leaf-topic index of a paper (position of its category among leaves),
    /// when categories are enabled.
    pub fn topic_of(&self, p: &Paper) -> Option<usize> {
        p.category.and_then(|c| self.tree.leaf_index(c))
    }

    /// Serialises the corpus to JSON (config + entities; the category tree
    /// and reverse citation index are rebuilt on load).
    pub fn to_json(&self) -> String {
        let dump = CorpusDump {
            config: self.config.clone(),
            papers: self.papers.clone(),
            authors: self.authors.clone(),
            venues: self.venues.clone(),
        };
        serde_json::to_string(&dump).expect("corpus serialises")
    }

    /// Restores a corpus serialised with [`Corpus::to_json`].
    ///
    /// # Errors
    /// Returns an error for malformed JSON or internally inconsistent data
    /// (dangling references/author ids).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let dump: CorpusDump = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let tree = CategoryTree::build(&[
            dump.config.disciplines.len(),
            dump.config.fields_per_discipline,
            dump.config.topics_per_field,
        ]);
        let n = dump.papers.len();
        let mut cited_by: Vec<Vec<PaperId>> = vec![Vec::new(); n];
        for (i, p) in dump.papers.iter().enumerate() {
            if p.id.index() != i {
                return Err(format!("paper ids not dense at {i}"));
            }
            for r in &p.references {
                if r.index() >= n {
                    return Err(format!("dangling reference {r:?} in paper {i}"));
                }
                cited_by[r.index()].push(p.id);
            }
            for a in &p.authors {
                if a.index() >= dump.authors.len() {
                    return Err(format!("dangling author {a:?} in paper {i}"));
                }
            }
        }
        Ok(Corpus {
            config: dump.config,
            tree,
            papers: dump.papers,
            authors: dump.authors,
            venues: dump.venues,
            cited_by,
        })
    }

    /// Dataset statistics in the shape of the paper's Tab. III.
    pub fn stats(&self) -> CorpusStats {
        let mut keywords: Vec<&str> =
            self.papers.iter().flat_map(|p| p.keywords.iter().map(String::as_str)).collect();
        keywords.sort_unstable();
        keywords.dedup();
        let authors_with_papers = self.authors.iter().filter(|a| !a.papers.is_empty()).count();
        CorpusStats {
            name: self.config.name.clone(),
            papers: self.papers.len(),
            authors: authors_with_papers,
            year_min: self.config.years.0,
            year_max: self.config.years.1,
            keywords: keywords.len(),
            venues: self.venues.len(),
            classes: if self.config.with_categories { self.config.disciplines.len() } else { 0 },
            affiliations: self.config.n_affiliations.unwrap_or(0),
        }
    }
}

/// Serialisation payload for [`Corpus::to_json`].
#[derive(serde::Serialize, serde::Deserialize)]
struct CorpusDump {
    config: CorpusConfig,
    papers: Vec<Paper>,
    authors: Vec<Author>,
    venues: Vec<Venue>,
}

/// Tab. III-style dataset statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusStats {
    /// Dataset name.
    pub name: String,
    /// Paper/patent count.
    pub papers: usize,
    /// Authors with at least one paper.
    pub authors: usize,
    /// First publication year.
    pub year_min: u16,
    /// Last publication year.
    pub year_max: u16,
    /// Distinct keywords.
    pub keywords: usize,
    /// Venue count.
    pub venues: usize,
    /// Top-level classes (disciplines).
    pub classes: usize,
    /// Affiliation count.
    pub affiliations: usize,
}

fn gen_abstract(
    prof: &DisciplineProfile,
    topic: usize,
    innovation: [f32; NUM_SUBSPACES],
    paper_idx: usize,
    topic_pool: usize,
    rng: &mut StdRng,
) -> Vec<Sentence> {
    let n_sent = rng.gen_range(5..=9usize);
    // rhetorical structure: ~1/3 background, ~1/3 method, rest result
    let b_end = (n_sent as f64 * 0.34).round().max(1.0) as usize;
    let m_end = (n_sent as f64 * 0.67).round().max((b_end + 1) as f64) as usize;
    (0..n_sent)
        .map(|s| {
            let label = if s < b_end {
                Subspace::Background
            } else if s < m_end.min(n_sent - 1) {
                Subspace::Method
            } else {
                Subspace::Result
            };
            let text = gen_sentence(
                prof,
                topic,
                label,
                innovation[label.index()],
                paper_idx,
                topic_pool,
                rng,
            );
            Sentence { text, label }
        })
        .collect()
}

fn gen_sentence(
    prof: &DisciplineProfile,
    topic: usize,
    label: Subspace,
    innovation: f32,
    paper_idx: usize,
    topic_pool: usize,
    rng: &mut StdRng,
) -> String {
    let cues = cue_words(label);
    let mut words: Vec<String> = Vec::new();
    // 2 cue words anchor the rhetorical role
    for _ in 0..2 {
        words.push(cues[rng.gen_range(0..cues.len())].to_owned());
    }
    let n_content = rng.gen_range(5..=9usize);
    for j in 0..n_content {
        // innovative papers swap topic words for fresh frontier vocabulary
        if rng.gen::<f32>() < innovation * 0.8 {
            let idx = paper_idx * 16 + j * 2 + rng.gen_range(0..2);
            words.push(prof.frontier_word(label, idx));
        } else {
            words.push(prof.topic_word(topic, label, rng.gen_range(0..topic_pool)));
        }
        if rng.gen::<f32>() < 0.35 {
            words.push(FILLER[rng.gen_range(0..FILLER.len())].to_owned());
        }
    }
    words.shuffle(rng);
    words.join(" ")
}

fn gen_keywords(
    prof: &DisciplineProfile,
    topic: usize,
    innovation: [f32; NUM_SUBSPACES],
    paper_idx: usize,
    topic_pool: usize,
    rng: &mut StdRng,
) -> Vec<String> {
    let n = rng.gen_range(3..=6usize);
    (0..n)
        .map(|j| {
            let k = Subspace::from_index(j % NUM_SUBSPACES);
            if rng.gen::<f32>() < innovation[k.index()] * 0.6 {
                prof.frontier_word(k, paper_idx * 16 + 8 + j)
            } else {
                prof.topic_word(topic, k, rng.gen_range(0..topic_pool))
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn sample_references(
    i: usize,
    topic: usize,
    discipline_idx: usize,
    topics_per_discipline: usize,
    n_topics: usize,
    n_refs: usize,
    citing_year: u16,
    years: &[u16],
    by_topic: &[Vec<usize>],
    in_degree: &[u32],
    innov_part: &[f64],
    recognized: &[f64],
    rng: &mut StdRng,
) -> Vec<PaperId> {
    let mut refs: Vec<PaperId> = Vec::with_capacity(n_refs);
    let mut tries = 0usize;
    while refs.len() < n_refs && tries < n_refs * 8 {
        tries += 1;
        let roll: f32 = rng.gen();
        let pool_topic = if roll < 0.7 {
            topic
        } else if roll < 0.9 {
            // same discipline, another topic
            discipline_idx * topics_per_discipline + rng.gen_range(0..topics_per_discipline)
        } else {
            rng.gen_range(0..n_topics)
        };
        let pool = &by_topic[pool_topic];
        if pool.is_empty() {
            continue;
        }
        // preferential attachment × quality with *delayed recognition*:
        // citers cannot yet judge the *innovation* of very recent work (that
        // factor phases in over ~3 years, so first-year citation counts do
        // not hand the HP baseline the ground truth), but venue prestige and
        // author authority are visible the day a paper appears and influence
        // citing behaviour immediately (which is what lets recommenders rank
        // brand-new papers at all)
        let pick = (0..3)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .max_by(|&a, &b| {
                let score = |p: usize| {
                    let age = citing_year.saturating_sub(years[p]) as f64;
                    let damp = (age / 3.0).min(1.0);
                    (1.0 + in_degree[p] as f64) * recognized[p] * innov_part[p].powf(damp)
                };
                score(a).total_cmp(&score(b))
            })
            .expect("3 candidates");
        if pick != i && !refs.contains(&PaperId::from(pick)) {
            refs.push(PaperId::from(pick));
        }
    }
    refs.sort_unstable();
    refs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        Corpus::generate(CorpusConfig { n_papers: 300, n_authors: 120, ..Default::default() })
    }

    #[test]
    fn generates_requested_counts() {
        let c = small_corpus();
        assert_eq!(c.papers.len(), 300);
        assert_eq!(c.authors.len(), 120);
        assert_eq!(c.venues.len(), 8);
        // ids are dense
        for (i, p) in c.papers.iter().enumerate() {
            assert_eq!(p.id.index(), i);
        }
    }

    #[test]
    fn references_point_backwards_in_time() {
        let c = small_corpus();
        for p in &c.papers {
            for r in &p.references {
                assert!(r.index() < p.id.index(), "ref {} of {}", r.index(), p.id.index());
                assert!(c.paper(*r).year <= p.year);
            }
        }
    }

    #[test]
    fn cited_by_is_inverse_of_references() {
        let c = small_corpus();
        for p in &c.papers {
            for r in &p.references {
                assert!(c.cited_by(*r).contains(&p.id));
            }
        }
        let total_refs: usize = c.papers.iter().map(|p| p.references.len()).sum();
        let total_cites: usize =
            (0..c.papers.len()).map(|i| c.cited_by(PaperId::from(i)).len()).sum();
        assert_eq!(total_refs, total_cites);
    }

    #[test]
    fn abstracts_follow_rhetorical_order() {
        let c = small_corpus();
        for p in &c.papers {
            assert!(p.sentences.len() >= 5);
            let labels = p.sentence_labels();
            // labels are monotone: background block, method block, result block
            let mut max_seen = 0usize;
            for l in &labels {
                assert!(l.index() >= max_seen || l.index() == max_seen, "non-monotone");
                max_seen = max_seen.max(l.index());
            }
            assert_eq!(labels[0], Subspace::Background);
            assert_eq!(*labels.last().unwrap(), Subspace::Result);
        }
    }

    #[test]
    fn citations_correlate_with_planted_innovation() {
        // the core planted signal: discipline-weighted innovation must
        // correlate with ground-truth citations
        let c =
            Corpus::generate(CorpusConfig { n_papers: 800, n_authors: 200, ..Default::default() });
        let w = c.config.disciplines[0].citation_weights;
        let score: Vec<f64> =
            c.papers.iter().map(|p| (0..3).map(|k| w[k] * p.innovation[k] as f64).sum()).collect();
        let cites: Vec<f64> = c.papers.iter().map(|p| p.citations_received as f64).collect();
        let rho = sem_stats::spearman(&score, &cites);
        assert!(rho > 0.45, "innovation/citation correlation too weak: {rho}");
    }

    #[test]
    fn innovative_papers_use_frontier_words() {
        let c = small_corpus();
        let prof = &c.config.disciplines[0];
        // frontier words contain a marker segment; check usage scales with innovation
        let frontier_prefixes: Vec<String> = (0..3)
            .map(|k| {
                let w = prof.frontier_word(Subspace::from_index(k), 0);
                w[..4].to_string()
            })
            .collect();
        let _ = frontier_prefixes;
        let most_innovative = c
            .papers
            .iter()
            .max_by(|a, b| {
                let s = |p: &Paper| p.innovation.iter().sum::<f32>();
                s(a).total_cmp(&s(b))
            })
            .unwrap();
        let least = c
            .papers
            .iter()
            .min_by(|a, b| {
                let s = |p: &Paper| p.innovation.iter().sum::<f32>();
                s(a).total_cmp(&s(b))
            })
            .unwrap();
        // count words unique to each paper (frontier words are per-paper)
        let count_unique = |p: &Paper| {
            let toks = p.all_tokens();
            let other_tokens: std::collections::HashSet<String> = c
                .papers
                .iter()
                .filter(|q| q.id != p.id)
                .take(100)
                .flat_map(|q| q.all_tokens())
                .collect();
            toks.iter().filter(|t| !other_tokens.contains(*t)).count()
        };
        assert!(count_unique(most_innovative) > count_unique(least));
    }

    #[test]
    fn stats_match_config() {
        let c = small_corpus();
        let s = c.stats();
        assert_eq!(s.papers, 300);
        assert!(s.authors <= 120);
        assert!(s.keywords > 50);
        assert_eq!(s.venues, 8);
        assert_eq!(s.classes, 1);
        assert_eq!((s.year_min, s.year_max), (2008, 2017));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_corpus();
        let b = small_corpus();
        assert_eq!(a.papers[5].title, b.papers[5].title);
        assert_eq!(a.papers[50].references, b.papers[50].references);
        assert_eq!(a.papers[100].citations_received, b.papers[100].citations_received);
    }

    #[test]
    fn years_are_sorted_and_in_range() {
        let c = small_corpus();
        let years: Vec<u16> = c.papers.iter().map(|p| p.year).collect();
        assert!(years.windows(2).all(|w| w[0] <= w[1]));
        assert!(years.iter().all(|&y| (2008..=2017).contains(&y)));
        let recent = c.papers_in_years(2015, 2017);
        assert!(!recent.is_empty());
        assert!(recent.iter().all(|&p| c.paper(p).year >= 2015));
    }

    #[test]
    fn low_resource_preset_fields_absent() {
        let c = Corpus::generate(CorpusConfig {
            n_papers: 100,
            n_authors: 60,
            venues_per_discipline: 0,
            n_affiliations: None,
            with_keywords: false,
            with_categories: false,
            ..Default::default()
        });
        assert!(c.venues.is_empty());
        assert!(c.papers.iter().all(|p| p.venue.is_none()));
        assert!(c.papers.iter().all(|p| p.keywords.is_empty()));
        assert!(c.papers.iter().all(|p| p.category.is_none()));
        assert!(c.authors.iter().all(|a| a.affiliation.is_none()));
    }

    #[test]
    fn multi_discipline_assignment() {
        let c = Corpus::generate(CorpusConfig {
            disciplines: vec![
                DisciplineProfile::computer_science(),
                DisciplineProfile::medicine(),
                DisciplineProfile::sociology(),
            ],
            n_papers: 400,
            n_authors: 150,
            ..Default::default()
        });
        for d in 0..3 {
            assert!(
                c.papers.iter().filter(|p| p.discipline == d).count() > 50,
                "discipline {d} under-represented"
            );
        }
        // category leaf must belong to the paper's discipline subtree
        for p in &c.papers {
            let leaf = p.category.unwrap();
            let top = c.tree.top_field(leaf);
            let expect_top = c.tree.children(c.tree.root())[p.discipline];
            assert_eq!(top, expect_top);
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let a =
            Corpus::generate(CorpusConfig { n_papers: 80, n_authors: 40, ..Default::default() });
        let json = a.to_json();
        let b = Corpus::from_json(&json).unwrap();
        assert_eq!(a.papers.len(), b.papers.len());
        assert_eq!(a.config.seed, b.config.seed);
        for (pa, pb) in a.papers.iter().zip(&b.papers) {
            assert_eq!(pa.title, pb.title);
            assert_eq!(pa.references, pb.references);
            assert_eq!(pa.citations_received, pb.citations_received);
        }
        // rebuilt reverse index matches
        for p in &a.papers {
            assert_eq!(a.cited_by(p.id), b.cited_by(p.id));
        }
        // rebuilt tree has identical shape
        assert_eq!(a.tree.len(), b.tree.len());
        assert_eq!(a.tree.leaves(), b.tree.leaves());
    }

    #[test]
    fn from_json_rejects_garbage_and_inconsistency() {
        assert!(Corpus::from_json("nope").is_err());
        let a =
            Corpus::generate(CorpusConfig { n_papers: 20, n_authors: 10, ..Default::default() });
        // corrupt a reference to a dangling id
        let mut json = a.to_json();
        json = json.replacen("\"references\":[", "\"references\":[999999,", 1);
        assert!(Corpus::from_json(&json).is_err());
    }

    #[test]
    #[should_panic(expected = "n_papers must be positive")]
    fn zero_papers_panics() {
        let _ = Corpus::generate(CorpusConfig { n_papers: 0, ..Default::default() });
    }
}
