//! Entity id newtypes and the subspace enum.

use serde::{Deserialize, Serialize};

/// Number of content subspaces `K` (background, method, result) — the
/// paper's setting for all experiments (Sec. III-C).
pub const NUM_SUBSPACES: usize = 3;

/// The paper's content subspaces (Sec. III): the commonly recognised aspects
/// of a paper's contribution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum Subspace {
    /// Problem setting, motivation, prior context.
    Background,
    /// Proposed approach, model, algorithm.
    Method,
    /// Findings, measurements, conclusions.
    Result,
}

impl Subspace {
    /// All subspaces in index order.
    pub const ALL: [Subspace; NUM_SUBSPACES] =
        [Subspace::Background, Subspace::Method, Subspace::Result];

    /// Dense index in `0..NUM_SUBSPACES`.
    pub fn index(self) -> usize {
        match self {
            Subspace::Background => 0,
            Subspace::Method => 1,
            Subspace::Result => 2,
        }
    }

    /// Inverse of [`Subspace::index`].
    ///
    /// # Panics
    /// Panics for indices `>= NUM_SUBSPACES`.
    pub fn from_index(i: usize) -> Subspace {
        Subspace::ALL[i]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Subspace::Background => "background",
            Subspace::Method => "method",
            Subspace::Result => "result",
        }
    }
}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash, Serialize, Deserialize)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a usable index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(u32::try_from(v).expect("id overflow"))
            }
        }
    };
}

id_type!(
    /// Identifier of a paper (or patent) within a corpus.
    PaperId
);
id_type!(
    /// Identifier of an author/user within a corpus.
    AuthorId
);
id_type!(
    /// Identifier of a publication venue within a corpus.
    VenueId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subspace_roundtrip() {
        for s in Subspace::ALL {
            assert_eq!(Subspace::from_index(s.index()), s);
        }
        assert_eq!(Subspace::Background.name(), "background");
    }

    #[test]
    fn ids_convert() {
        let p: PaperId = 42usize.into();
        assert_eq!(p.index(), 42);
        assert_eq!(p, PaperId(42));
        assert!(PaperId(1) < PaperId(2));
    }

    #[test]
    #[should_panic]
    fn subspace_out_of_range_panics() {
        let _ = Subspace::from_index(3);
    }
}
