//! Corpus entity records: papers, authors, venues.

use serde::{Deserialize, Serialize};

use crate::ids::{AuthorId, PaperId, Subspace, VenueId, NUM_SUBSPACES};

/// One sentence of an abstract with its gold rhetorical-function tag (the
/// PubMedRCT-style label the CRF trains on).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sentence {
    /// Sentence text (whitespace-joined tokens).
    pub text: String,
    /// Gold subspace/function tag.
    pub label: Subspace,
}

/// A paper (or patent) with full metadata and generator ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Paper {
    /// Identifier (dense, equals the index in `Corpus::papers`).
    pub id: PaperId,
    /// Synthetic title.
    pub title: String,
    /// Abstract sentences with gold function tags.
    pub sentences: Vec<Sentence>,
    /// Author-chosen keywords (may be empty in low-resource presets).
    pub keywords: Vec<String>,
    /// Outgoing references (earlier or same-year papers).
    pub references: Vec<PaperId>,
    /// Author list.
    pub authors: Vec<AuthorId>,
    /// Publication venue (`None` in the patent preset).
    pub venue: Option<VenueId>,
    /// Publication year.
    pub year: u16,
    /// Discipline index within the corpus.
    pub discipline: usize,
    /// Leaf node id of the paper's tag in the corpus category tree
    /// (`None` in low-resource presets).
    pub category: Option<usize>,
    /// **Ground truth** (not visible to models): latent innovation per
    /// subspace that drove content generation and citations.
    pub innovation: [f32; NUM_SUBSPACES],
    /// **Ground truth**: citations accumulated within the evaluation horizon.
    pub citations_received: u32,
}

impl Paper {
    /// Token lists per sentence (whitespace split).
    pub fn sentence_tokens(&self) -> Vec<Vec<String>> {
        self.sentences
            .iter()
            .map(|s| s.text.split_whitespace().map(str::to_owned).collect())
            .collect()
    }

    /// All abstract tokens flattened.
    pub fn all_tokens(&self) -> Vec<String> {
        self.sentences.iter().flat_map(|s| s.text.split_whitespace().map(str::to_owned)).collect()
    }

    /// Gold labels per sentence.
    pub fn sentence_labels(&self) -> Vec<Subspace> {
        self.sentences.iter().map(|s| s.label).collect()
    }
}

/// An author/user in the academic network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Author {
    /// Identifier (dense).
    pub id: AuthorId,
    /// Papers written, in publication order.
    pub papers: Vec<PaperId>,
    /// Latent authority in `[0, 1]` (drives citation boost; ground truth).
    pub authority: f32,
    /// Home topic (leaf index) of the author's research community.
    pub home_topic: usize,
    /// Affiliation index (`None` in presets without affiliations).
    pub affiliation: Option<usize>,
}

/// A publication venue.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Venue {
    /// Identifier (dense).
    pub id: VenueId,
    /// Display name.
    pub name: String,
    /// Discipline the venue belongs to.
    pub discipline: usize,
    /// Latent prestige in `[0, 1]` (drives citation boost; ground truth).
    pub prestige: f32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_paper() -> Paper {
        Paper {
            id: PaperId(0),
            title: "t".into(),
            sentences: vec![
                Sentence { text: "a b".into(), label: Subspace::Background },
                Sentence { text: "c d e".into(), label: Subspace::Method },
            ],
            keywords: vec!["k".into()],
            references: vec![],
            authors: vec![AuthorId(1)],
            venue: Some(VenueId(2)),
            year: 2013,
            discipline: 0,
            category: Some(5),
            innovation: [0.1, 0.2, 0.3],
            citations_received: 7,
        }
    }

    #[test]
    fn tokens_split() {
        let p = sample_paper();
        assert_eq!(p.sentence_tokens(), vec![vec!["a", "b"], vec!["c", "d", "e"]]);
        assert_eq!(p.all_tokens().len(), 5);
        assert_eq!(p.sentence_labels(), vec![Subspace::Background, Subspace::Method]);
    }

    #[test]
    fn serde_roundtrip() {
        let p = sample_paper();
        let json = serde_json::to_string(&p).unwrap();
        let q: Paper = serde_json::from_str(&json).unwrap();
        assert_eq!(q.id, p.id);
        assert_eq!(q.citations_received, 7);
        assert_eq!(q.sentences.len(), 2);
    }
}
