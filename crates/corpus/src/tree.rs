//! Hierarchical classification system (**HCS**) — an ACM-CCS-like category
//! tree. The expert rule `f_c` (paper Eq. 1) measures paper difference by a
//! weighted edit distance over root-to-tag paths in this tree.

/// A node in the category tree.
#[derive(Debug, Clone)]
struct Node {
    parent: Option<usize>,
    level: usize,
    name: String,
    children: Vec<usize>,
}

/// A rooted category tree with fixed branching per level.
#[derive(Debug, Clone)]
pub struct CategoryTree {
    nodes: Vec<Node>,
    leaves: Vec<usize>,
}

impl CategoryTree {
    /// Builds a tree where level `l` nodes each have `branching[l]` children;
    /// `branching = [11, 4]` gives a root, 11 fields and 44 leaf topics.
    ///
    /// # Panics
    /// Panics when `branching` is empty or contains zero.
    pub fn build(branching: &[usize]) -> Self {
        assert!(!branching.is_empty(), "tree needs at least one level");
        assert!(branching.iter().all(|&b| b > 0), "zero branching factor");
        let mut nodes =
            vec![Node { parent: None, level: 0, name: "root".into(), children: Vec::new() }];
        let mut frontier = vec![0usize];
        for (level, &b) in branching.iter().enumerate() {
            let mut next = Vec::new();
            for &parent in &frontier {
                for c in 0..b {
                    let id = nodes.len();
                    let name = format!("{}.{}", nodes[parent].name, c);
                    nodes.push(Node {
                        parent: Some(parent),
                        level: level + 1,
                        name,
                        children: Vec::new(),
                    });
                    nodes[parent].children.push(id);
                    next.push(id);
                }
            }
            frontier = next;
        }
        CategoryTree { nodes, leaves: frontier }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a freshly constructed empty tree (never happens via
    /// [`CategoryTree::build`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Leaf node ids (the assignable paper tags), in construction order.
    pub fn leaves(&self) -> &[usize] {
        &self.leaves
    }

    /// Depth of a node (root = 0).
    pub fn level(&self, node: usize) -> usize {
        self.nodes[node].level
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, node: usize) -> Option<usize> {
        self.nodes[node].parent
    }

    /// Children of a node.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.nodes[node].children
    }

    /// Dotted display name, e.g. `root.3.1`.
    pub fn name(&self, node: usize) -> &str {
        &self.nodes[node].name
    }

    /// Nodes on the path from the root to `node`, inclusive — the paper's
    /// `r_p` set (Eq. 1).
    pub fn path_from_root(&self, node: usize) -> Vec<usize> {
        let mut path = Vec::with_capacity(self.nodes[node].level + 1);
        let mut cur = Some(node);
        while let Some(n) = cur {
            path.push(n);
            cur = self.nodes[n].parent;
        }
        path.reverse();
        path
    }

    /// The level-1 ancestor (top field) of a node; the root maps to itself.
    pub fn top_field(&self, node: usize) -> usize {
        let path = self.path_from_root(node);
        path.get(1).copied().unwrap_or(0)
    }

    /// The ancestor of `node` at the given level (`None` when the node is
    /// shallower than `level`). Level 0 is the root.
    pub fn ancestor_at_level(&self, node: usize, level: usize) -> Option<usize> {
        self.path_from_root(node).get(level).copied()
    }

    /// The leaf's index within [`CategoryTree::leaves`], if it is a leaf.
    pub fn leaf_index(&self, node: usize) -> Option<usize> {
        self.leaves.iter().position(|&l| l == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counts() {
        let t = CategoryTree::build(&[3, 2]);
        assert_eq!(t.len(), 1 + 3 + 6);
        assert_eq!(t.leaves().len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn path_from_root_ordering() {
        let t = CategoryTree::build(&[2, 2, 2]);
        let leaf = t.leaves()[5];
        let path = t.path_from_root(leaf);
        assert_eq!(path[0], t.root());
        assert_eq!(*path.last().unwrap(), leaf);
        assert_eq!(path.len(), 4);
        for w in path.windows(2) {
            assert_eq!(t.parent(w[1]), Some(w[0]));
        }
    }

    #[test]
    fn levels_are_consistent() {
        let t = CategoryTree::build(&[4, 3]);
        assert_eq!(t.level(t.root()), 0);
        for &leaf in t.leaves() {
            assert_eq!(t.level(leaf), 2);
        }
        for &c in t.children(t.root()) {
            assert_eq!(t.level(c), 1);
        }
    }

    #[test]
    fn top_field_groups_leaves() {
        let t = CategoryTree::build(&[2, 3]);
        let fields: Vec<usize> = t.leaves().iter().map(|&l| t.top_field(l)).collect();
        // first 3 leaves under field 1, next 3 under field 2
        assert_eq!(fields[0], fields[1]);
        assert_eq!(fields[1], fields[2]);
        assert_ne!(fields[2], fields[3]);
        assert_eq!(t.top_field(t.root()), 0);
    }

    #[test]
    fn names_are_dotted_paths() {
        let t = CategoryTree::build(&[2]);
        assert_eq!(t.name(t.root()), "root");
        assert_eq!(t.name(t.leaves()[1]), "root.1");
    }

    #[test]
    fn ancestor_at_level_walks_path() {
        let t = CategoryTree::build(&[2, 3, 2]);
        let leaf = t.leaves()[7];
        let path = t.path_from_root(leaf);
        for (lvl, &node) in path.iter().enumerate() {
            assert_eq!(t.ancestor_at_level(leaf, lvl), Some(node));
        }
        assert_eq!(t.ancestor_at_level(leaf, 9), None);
        assert_eq!(t.ancestor_at_level(t.root(), 0), Some(t.root()));
    }

    #[test]
    fn leaf_index_roundtrip() {
        let t = CategoryTree::build(&[3, 2]);
        for (i, &l) in t.leaves().iter().enumerate() {
            assert_eq!(t.leaf_index(l), Some(i));
        }
        assert_eq!(t.leaf_index(t.root()), None);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_branching_panics() {
        let _ = CategoryTree::build(&[]);
    }
}
