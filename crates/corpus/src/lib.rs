//! # sem-corpus
//!
//! A generative synthetic academic corpus — the substitute for the ACM
//! Digital Library, Scopus, PubMedRCT and USPTO datasets the paper evaluates
//! on (none are redistributable; see DESIGN.md §2).
//!
//! The generator plants exactly the latent structure the paper's experiments
//! claim to detect, so a correct reimplementation of the paper's methods must
//! rediscover it:
//!
//! * every paper has a latent per-subspace **innovation** vector; innovative
//!   papers use frontier vocabulary in the corresponding part of their
//!   abstract, making their subspace content measurably different;
//! * **citations received** are causally driven by innovation through
//!   *discipline-specific* weights (computer science rewards method/result
//!   innovation, pharmacology rewards results, social science rewards
//!   background/method — the paper's Fig. 3 and Tab. I structure), modulated
//!   by venue prestige and author authority;
//! * the **reference graph** prefers topically close, already-cited papers
//!   (preferential attachment), which grounds the recommendation experiments
//!   and the h-index baseline;
//! * abstract sentences follow the background → methods → results rhetorical
//!   structure with per-role cue words, giving the CRF labeler a learnable
//!   signal (the PubMedRCT substitute ships gold function tags).
//!
//! Dataset presets ([`presets`]) mirror the paper's Tab. III datasets at
//! laptop scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discipline;
pub mod generator;
mod ids;
pub mod paper;
pub mod presets;
pub mod tree;

pub use discipline::DisciplineProfile;
pub use generator::{Corpus, CorpusConfig};
pub use ids::{AuthorId, PaperId, Subspace, VenueId, NUM_SUBSPACES};
pub use paper::{Author, Paper, Sentence, Venue};
pub use tree::CategoryTree;
