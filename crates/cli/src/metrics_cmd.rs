//! `sem metrics`: render a metrics snapshot written by `--metrics-out`,
//! plus the shared helper the instrumented commands use to write one.
//!
//! `--metrics-out PATH` on `train`, `index query` and `ingest` writes the
//! run's [`sem_obs::Registry`] snapshot twice: the stable JSON document at
//! `PATH` and the Prometheus text exposition at `PATH` with its extension
//! replaced by `.prom`. `sem metrics --in PATH` reads the JSON back and
//! renders it as an aligned table (default) or re-emits the JSON.

use std::path::PathBuf;

use sem_obs::Registry;
use serde_json::JsonValue as Value;

use crate::commands::{Args, CliError};

/// Writes `registry`'s snapshot for a finished run: JSON at `path`,
/// Prometheus text at `path` with the extension swapped for `.prom`.
pub(crate) fn write_metrics_out(registry: &Registry, path: &str) -> Result<(), CliError> {
    let snap = registry.snapshot();
    let json_path = PathBuf::from(path);
    std::fs::write(&json_path, snap.to_json())?;
    std::fs::write(json_path.with_extension("prom"), snap.to_prometheus())?;
    Ok(())
}

fn field<'v>(m: &'v Value, key: &str) -> Result<&'v Value, CliError> {
    m.as_obj()
        .and_then(|o| o.iter().find(|(k, _)| k == key))
        .map(|(_, v)| v)
        .ok_or_else(|| CliError(format!("malformed snapshot: metric missing {key:?}")))
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn fmt_num(v: &Value) -> String {
    match v {
        Value::Int(n) => n.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Null => "-".to_string(),
        other => format!("({})", other.kind()),
    }
}

/// One aligned row per metric: counters and gauges show their value,
/// histograms show count / mean / p50 / p90 / p99 / max.
fn render_table(metrics: &[Value]) -> Result<String, CliError> {
    let mut rows: Vec<[String; 3]> = Vec::with_capacity(metrics.len());
    for m in metrics {
        let name = as_str(field(m, "name")?).unwrap_or("?").to_string();
        let kind = as_str(field(m, "type")?).unwrap_or("?").to_string();
        let detail = match kind.as_str() {
            "counter" | "gauge" => fmt_num(field(m, "value")?),
            "histogram" => format!(
                "count={} mean={} p50={} p90={} p99={} max={}",
                fmt_num(field(m, "count")?),
                fmt_num(field(m, "mean")?),
                fmt_num(field(m, "p50")?),
                fmt_num(field(m, "p90")?),
                fmt_num(field(m, "p99")?),
                fmt_num(field(m, "max")?),
            ),
            other => return Err(CliError(format!("malformed snapshot: unknown type {other:?}"))),
        };
        rows.push([name, kind, detail]);
    }
    let name_w = rows.iter().map(|r| r[0].len()).max().unwrap_or(4).max("NAME".len());
    let kind_w = rows.iter().map(|r| r[1].len()).max().unwrap_or(4).max("TYPE".len());
    let mut out = format!("{:name_w$}  {:kind_w$}  VALUE\n", "NAME", "TYPE");
    for [name, kind, detail] in rows {
        out.push_str(&format!("{name:name_w$}  {kind:kind_w$}  {detail}\n"));
    }
    Ok(out)
}

/// `sem metrics --in snapshot.json [--format table|json]`: dumps a metrics
/// snapshot produced by `--metrics-out`.
pub(crate) fn metrics(args: &Args) -> Result<String, CliError> {
    let path = args.required("in")?;
    let json = std::fs::read_to_string(path)?;
    let doc: Value = serde_json::from_str(&json)
        .map_err(|e| CliError(format!("{path} is not a metrics snapshot: {e}")))?;
    let metrics = field(&doc, "metrics")
        .ok()
        .and_then(Value::as_arr)
        .ok_or_else(|| CliError(format!("{path} is not a metrics snapshot: no `metrics` array")))?;
    match args.get("format").unwrap_or("table") {
        "json" => {
            serde_json::to_string_pretty(&doc).map_err(|e| CliError(format!("re-render: {e}")))
        }
        "table" => render_table(metrics),
        other => Err(CliError(format!("--format must be table or json, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::run;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn metrics_renders_table_and_json_from_snapshot() {
        let registry = Registry::new();
        registry.counter("demo.queries").add(7);
        registry.gauge("demo.util").set(0.25);
        registry.histogram("demo.lat.ns").record(1000);
        let path = std::env::temp_dir().join(format!("sem-metrics-{}.json", std::process::id()));
        write_metrics_out(&registry, path.to_str().unwrap()).unwrap();
        assert!(path.with_extension("prom").exists());

        let table = run(&argv(&["metrics", "--in", path.to_str().unwrap()])).unwrap();
        assert!(table.contains("demo.queries"), "{table}");
        assert!(table.contains("count=1"), "{table}");
        let json =
            run(&argv(&["metrics", "--in", path.to_str().unwrap(), "--format", "json"])).unwrap();
        assert!(json.contains("\"demo.util\""), "{json}");
        assert!(
            run(&argv(&["metrics", "--in", path.to_str().unwrap(), "--format", "xml"])).is_err()
        );

        std::fs::remove_file(path.with_extension("prom")).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_rejects_non_snapshots() {
        let path =
            std::env::temp_dir().join(format!("sem-metrics-bad-{}.json", std::process::id()));
        std::fs::write(&path, "{\"no\": \"metrics\"}").unwrap();
        assert!(run(&argv(&["metrics", "--in", path.to_str().unwrap()])).is_err());
        assert!(run(&argv(&["metrics", "--in", "/nonexistent/snapshot.json"])).is_err());
        std::fs::remove_file(&path).ok();
    }
}
