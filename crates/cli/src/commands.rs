//! Command implementations for the `sem` binary.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use sem_core::analysis;
use sem_core::eval::{RecTask, Recommender};
use sem_core::sampling::{build_training_pairs, NegativeStrategy};
use sem_core::{NpRecConfig, NpRecModel, PipelineConfig, SemConfig, SemModel, TextPipeline};
use sem_corpus::{presets, AuthorId, Corpus, PaperId, Subspace, NUM_SUBSPACES};
use sem_graph::HeteroGraph;
use sem_rules::RuleScorer;
use sem_train::atomic::write_atomic_retry;
use sem_train::{RetryPolicy, RunOptions, TrainError, TrainEvent, TrainFaultPlan, WatchdogConfig};

/// A user-facing CLI failure.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<String> for CliError {
    fn from(e: String) -> Self {
        CliError(e)
    }
}

impl From<sem_serve::ServeError> for CliError {
    fn from(e: sem_serve::ServeError) -> Self {
        CliError(e.to_string())
    }
}

impl From<TrainError> for CliError {
    fn from(e: TrainError) -> Self {
        CliError(e.to_string())
    }
}

/// Parsed `--flag value` arguments.
pub(crate) struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    pub(crate) fn parse(argv: &[String]) -> Result<Args, CliError> {
        Self::parse_with_switches(argv, &[])
    }

    /// Like [`Args::parse`], except the named flags are valueless switches:
    /// their presence means `true` and they consume no value.
    ///
    /// Parsing is order-insensitive and positionally unambiguous:
    ///
    /// - a value flag never swallows a following `--flag` token — `--out
    ///   --resume` is "--out needs a value", not `out = "--resume"`;
    /// - switches accept an optional explicit `--flag=true|false`, so
    ///   scripts can override a default without positional tricks;
    /// - `--flag=value` works for value flags too;
    /// - repeating a flag is an error instead of a silent last-one-wins.
    pub(crate) fn parse_with_switches(
        argv: &[String],
        switches: &[&str],
    ) -> Result<Args, CliError> {
        let mut flags = HashMap::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            let Some(raw) = a.strip_prefix("--") else {
                return Err(CliError(format!("unexpected argument {a:?}")));
            };
            let (name, inline) = match raw.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (raw, None),
            };
            if name.is_empty() {
                return Err(CliError(format!("unexpected argument {a:?}")));
            }
            let value = if switches.contains(&name) {
                match inline {
                    None => "true".to_string(),
                    Some(v) if v == "true" || v == "false" => v,
                    Some(v) => {
                        return Err(CliError(format!(
                            "--{name} is a switch; expected true or false, got {v:?}"
                        )))
                    }
                }
            } else {
                match inline {
                    Some(v) => v,
                    None => match it.peek() {
                        Some(v) if !v.starts_with("--") => it.next().expect("peeked value").clone(),
                        _ => return Err(CliError(format!("--{name} needs a value"))),
                    },
                }
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(CliError(format!("--{name} given more than once")));
            }
        }
        Ok(Args { flags })
    }

    pub(crate) fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    pub(crate) fn switch(&self, name: &str) -> bool {
        self.get(name) == Some("true")
    }

    pub(crate) fn required(&self, name: &str) -> Result<&str, CliError> {
        self.get(name).ok_or_else(|| CliError(format!("missing required --{name}")))
    }

    pub(crate) fn parse_num<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError(format!("--{name}: cannot parse {v:?}"))),
        }
    }
}

/// Dispatches a full argv (without the program name). Returns the text to
/// print on success.
///
/// # Errors
/// Returns [`CliError`] for unknown commands, bad flags, or IO problems.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(cmd) = argv.first() else {
        return Ok(help());
    };
    // two-word serve-family commands parse their own tails
    match cmd.as_str() {
        "index" => return crate::serve_cmds::index(&argv[1..]),
        "ingest" => return crate::serve_cmds::ingest(&Args::parse(&argv[1..])?),
        _ => {}
    }
    let args = match cmd.as_str() {
        "train" => Args::parse_with_switches(&argv[1..], &["progress", "resume", "watchdog"])?,
        _ => Args::parse(&argv[1..])?,
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(help()),
        "generate" => generate(&args),
        "stats" => stats(&args),
        "train" => train(&args),
        "embed" => embed(&args),
        "analyze" => analyze(&args),
        "recommend" => recommend(&args),
        "metrics" => crate::metrics_cmd::metrics(&args),
        other => Err(CliError(format!("unknown command {other:?}; try `sem help`"))),
    }
}

fn help() -> String {
    "sem — subspace embedding & new-paper recommendation toolkit

USAGE:
  sem generate  --preset acm|scopus|scopus3|pubmed|patent [--papers N] [--authors N] [--seed S] --out corpus.json
  sem stats     --corpus corpus.json
  sem train     --corpus corpus.json --out model-dir [--epochs N] [--workers N]
                [--checkpoint-dir DIR [--checkpoint-every N] [--resume]] [--progress]
                [--metrics-out metrics.json]
                [--watchdog [--max-rollbacks N] [--grad-spike-threshold F]]
                [--fault-nan-step N] [--fault-ckpt-failures N]
  sem embed     --model model-dir --paper ID
  sem metrics   --in metrics.json [--format table|json]
  sem analyze   --corpus corpus.json [--lof-k K]
  sem recommend --corpus corpus.json --split YEAR --user ID [--top N]

training runs on the shared runtime: `--workers N` parallelises gradient
computation (bit-identical results for any N), `--checkpoint-dir` writes
atomic per-epoch checkpoints, `--resume` continues from the latest valid
one, and `--progress` streams per-epoch events to stderr.

`--watchdog` arms the training watchdog: every step is screened for
non-finite or exploding loss/gradients and poisoned parameters; a trip
rolls the epoch back to its last valid state, backs the learning rate
off, and retries with a reshuffled batch order (up to `--max-rollbacks`
strikes, then the run fails as diverged). Recovery actions stream to
`--progress` and count into `--metrics-out` (watchdog.trips /
watchdog.rollbacks / watchdog.lr_backoffs). `--fault-nan-step N` and
`--fault-ckpt-failures N` inject deterministic faults (a NaN loss at
optimizer step N; N transient checkpoint-write failures) to drill the
recovery path.

serving (JSON output):
  sem index build  --model model-dir --out index.snap [--shards N] [--nlist N] [--nprobe N] [--flat-threshold N]
  sem index query  --model model-dir --index index.snap --paper ID[,ID...] [--k K] [--deadline-ms MS]
                   [--metrics-out metrics.json]
  sem index verify --index index.snap
  sem index probe  --index index.snap [--check-store true] [--max-journal-entries N]
  sem index maintain --index index.snap [--compact] [--recluster] [--status]
  sem ingest       --model model-dir --index index.snap --title T --abstract TEXT [--year Y] [--k K]
                   [--out index.snap] [--metrics-out metrics.json]

index files are crash-safe snapshots (checksummed header + atomic rename)
with a write-ahead journal alongside (<index>.journal); `index verify`
checks both and `index query`/`ingest` recover to the last durable state
automatically. `--deadline-ms` bounds per-query latency: an exhausted
budget returns a partial result flagged degraded instead of blocking.

`--shards N` (N > 1) builds a sharded family — `<out>.shard0..N-1` plus
`<out>.manifest` — that query/ingest/verify detect automatically: queries
fan out across shards and merge, an ingest journals to exactly the owning
shard, and `index verify` reports per-shard integrity (non-zero exit if
any shard fails). The `loadgen` binary (sem-serve crate) drives the
sharded path with open-loop fixed-QPS load and reports p50/p90/p99 JSON;
`--churn` soaks live maintenance (backpressured streaming ingest, online
compaction, drift re-clustering). `index probe --check-store true
--max-journal-entries N` alarms on journal tails that outgrew their
compaction budget; `index maintain` compacts/re-clusters a family online.

observability: `--metrics-out PATH` on train / index query / ingest writes
the run's metrics snapshot as JSON at PATH and Prometheus text at
PATH-with-.prom-extension (per-stage latency histograms, cache and
degradation counters, training wall times); `sem metrics` pretty-prints a
saved snapshot.
"
    .to_string()
}

fn load_corpus(path: &str) -> Result<Corpus, CliError> {
    let json = std::fs::read_to_string(path)?;
    Ok(Corpus::from_json(&json)?)
}

fn generate(args: &Args) -> Result<String, CliError> {
    let preset = args.required("preset")?;
    let mut cfg = match preset {
        "acm" => presets::acm_like(1),
        "scopus" => presets::scopus_like(1),
        "scopus3" => presets::scopus_three_disciplines(1),
        "pubmed" => presets::pubmed_like(1),
        "patent" => presets::patent_like(1),
        other => return Err(CliError(format!("unknown preset {other:?}"))),
    };
    cfg.n_papers = args.parse_num("papers", cfg.n_papers)?;
    cfg.n_authors = args.parse_num("authors", cfg.n_authors)?;
    cfg.seed = args.parse_num("seed", cfg.seed)?;
    let out = args.required("out")?;
    let corpus = Corpus::generate(cfg);
    std::fs::write(out, corpus.to_json())?;
    Ok(format!("wrote {} papers / {} authors to {out}", corpus.papers.len(), corpus.authors.len()))
}

fn stats(args: &Args) -> Result<String, CliError> {
    let corpus = load_corpus(args.required("corpus")?)?;
    let s = corpus.stats();
    Ok(format!(
        "{name}\n  papers: {papers}\n  authors (with publications): {authors}\n  keywords: {kw}\n  venues: {venues}\n  classes: {classes}\n  affiliations: {aff}\n  years: {y0}-{y1}",
        name = s.name,
        papers = s.papers,
        authors = s.authors,
        kw = s.keywords,
        venues = s.venues,
        classes = s.classes,
        aff = s.affiliations,
        y0 = s.year_min,
        y1 = s.year_max,
    ))
}

/// Model directory layout used by `train`/`embed`.
struct ModelDir {
    dir: PathBuf,
}

impl ModelDir {
    fn corpus_path(&self) -> PathBuf {
        self.dir.join("corpus.json")
    }

    fn config_path(&self) -> PathBuf {
        self.dir.join("sem_config.json")
    }

    fn weights_path(&self) -> PathBuf {
        self.dir.join("sem_weights.json")
    }

    fn pipeline_path(&self) -> PathBuf {
        self.dir.join("pipeline.json")
    }
}

/// Serialisable subset of [`SemConfig`] (the rest are training-only knobs
/// that do not affect the architecture).
#[derive(serde::Serialize, serde::Deserialize)]
struct StoredSemConfig {
    input_dim: usize,
    hidden: usize,
    attn: usize,
    seed: u64,
}

impl StoredSemConfig {
    fn to_config(&self) -> SemConfig {
        SemConfig {
            input_dim: self.input_dim,
            hidden: self.hidden,
            attn: self.attn,
            seed: self.seed,
            ..Default::default()
        }
    }
}

fn fit_pipeline(corpus: &Corpus) -> (TextPipeline, Vec<Vec<Subspace>>) {
    let pipeline = TextPipeline::fit(corpus, PipelineConfig::default());
    let labels = pipeline.label_corpus(corpus);
    (pipeline, labels)
}

fn train(args: &Args) -> Result<String, CliError> {
    let corpus_path = args.required("corpus")?;
    let corpus = load_corpus(corpus_path)?;
    let out = ModelDir { dir: PathBuf::from(args.required("out")?) };
    std::fs::create_dir_all(&out.dir)?;

    let (pipeline, labels) = fit_pipeline(&corpus);
    let scorer =
        RuleScorer::new(&corpus, &pipeline.vocab, &pipeline.embeddings, &pipeline.encoder, &labels);
    let epochs = args.parse_num("epochs", 8usize)?;
    let config = SemConfig { epochs, ..Default::default() };
    let mut model = SemModel::new(config.clone());
    let registry = args.get("metrics-out").map(|_| std::sync::Arc::new(sem_obs::Registry::new()));
    let watchdog = if args.switch("watchdog") {
        Some(WatchdogConfig {
            max_rollbacks: args.parse_num("max-rollbacks", 3usize)?,
            grad_spike_factor: args.parse_num("grad-spike-threshold", 10.0f32)?,
            ..WatchdogConfig::default()
        })
    } else {
        None
    };
    // Deterministic fault injection for the CI smoke and local recovery
    // drills; both flags default to no injection.
    let mut fault = TrainFaultPlan::none();
    if let Some(step) = args.get("fault-nan-step") {
        fault = fault.with_nan_loss_at(
            step.parse().map_err(|_| CliError(format!("--fault-nan-step: bad step {step:?}")))?,
        );
    }
    fault.checkpoint_write_failures = args.parse_num("fault-ckpt-failures", 0usize)?;
    let opts = RunOptions {
        workers: args.parse_num("workers", 0usize)?,
        checkpoint_dir: args.get("checkpoint-dir").map(PathBuf::from),
        checkpoint_every: args.parse_num("checkpoint-every", 0usize)?,
        resume: args.switch("resume"),
        metrics: registry.clone(),
        watchdog,
        fault,
        ..Default::default()
    };
    let progress = args.switch("progress");
    let report = model.train_with(&pipeline, &corpus, &scorer, &labels, &opts, &mut |e| {
        if progress {
            eprintln!("{}", format_event(e));
        }
    })?;
    if let (Some(registry), Some(path)) = (&registry, args.get("metrics-out")) {
        crate::metrics_cmd::write_metrics_out(registry, path)?;
    }

    // persist: corpus copy + fitted pipeline + architecture config + weights
    // (atomic writes with transient-IO retry, same policy as checkpoints)
    let retry = RetryPolicy::default();
    std::fs::copy(corpus_path, out.corpus_path())?;
    write_atomic_retry(&out.pipeline_path(), pipeline.to_json().as_bytes(), &retry)?;
    let stored = StoredSemConfig {
        input_dim: config.input_dim,
        hidden: config.hidden,
        attn: config.attn,
        seed: config.seed,
    };
    let stored_json = serde_json::to_string_pretty(&stored)
        .map_err(|e| CliError(format!("config serialisation: {e}")))?;
    write_atomic_retry(&out.config_path(), stored_json.as_bytes(), &retry)?;
    write_atomic_retry(&out.weights_path(), model.weights_to_json().as_bytes(), &retry)?;
    let resumed = match report.resumed_from {
        Some(e) => format!(" (resumed after epoch {})", e + 1),
        None => String::new(),
    };
    Ok(format!(
        "trained SEM ({} epochs){}: loss {:.4} -> {:.4}, triplet accuracy {:.3}; model saved to {}",
        epochs,
        resumed,
        report.epoch_losses.first().unwrap_or(&f32::NAN),
        report.epoch_losses.last().unwrap_or(&f32::NAN),
        report.triplet_accuracy,
        out.dir.display(),
    ))
}

/// One human-readable line per [`TrainEvent`] for `--progress` output.
fn format_event(e: &TrainEvent) -> String {
    match e {
        TrainEvent::Resumed { epoch, path } => {
            format!("resumed after epoch {} from {}", epoch + 1, path.display())
        }
        TrainEvent::Epoch { epoch, epochs, loss, items, examples_per_sec, elapsed_ms } => format!(
            "epoch {}/{}: loss {loss:.4} ({items} items, {examples_per_sec:.0} items/s, {elapsed_ms} ms)",
            epoch + 1,
            epochs,
        ),
        TrainEvent::Checkpoint { epoch, path } => {
            format!("checkpoint after epoch {}: {}", epoch + 1, path.display())
        }
        TrainEvent::WatchdogTrip { epoch, step, detail } => {
            format!("watchdog tripped at epoch {} step {step}: {detail}", epoch + 1)
        }
        TrainEvent::RolledBack { epoch, attempt, strikes, lr } => format!(
            "rolled back epoch {} (retry {attempt}, strike {strikes}); lr backed off to {lr:.3e}",
            epoch + 1,
        ),
        TrainEvent::LrBackoff { epoch, lr, detail } => {
            format!("lr backed off to {lr:.3e} after epoch {}: {detail}", epoch + 1)
        }
    }
}

/// Everything a model directory reloads: corpus, frozen text pipeline,
/// predicted sentence labels and the trained SEM model.
pub(crate) type LoadedModel = (Corpus, TextPipeline, Vec<Vec<Subspace>>, SemModel);

pub(crate) fn load_model(dir: &Path) -> Result<LoadedModel, CliError> {
    let md = ModelDir { dir: dir.to_path_buf() };
    let corpus =
        load_corpus(md.corpus_path().to_str().ok_or_else(|| CliError("bad path".into()))?)?;
    let stored: StoredSemConfig = serde_json::from_str(&std::fs::read_to_string(md.config_path())?)
        .map_err(|e| CliError(e.to_string()))?;
    let weights = std::fs::read_to_string(md.weights_path())?;
    let model = SemModel::from_json(stored.to_config(), &weights)?;
    // prefer the persisted pipeline; refit deterministically if absent
    // (older model dirs) — both paths yield identical components
    let (pipeline, labels) = match std::fs::read_to_string(md.pipeline_path()) {
        Ok(json) => {
            let pipeline = TextPipeline::from_json(&json)?;
            let labels = pipeline.label_corpus(&corpus);
            (pipeline, labels)
        }
        Err(_) => fit_pipeline(&corpus),
    };
    Ok((corpus, pipeline, labels, model))
}

fn embed(args: &Args) -> Result<String, CliError> {
    let dir = PathBuf::from(args.required("model")?);
    let paper_id: usize = args.parse_num("paper", usize::MAX)?;
    let (corpus, pipeline, labels, model) = load_model(&dir)?;
    if paper_id >= corpus.papers.len() {
        return Err(CliError(format!("--paper must be in 0..{}", corpus.papers.len())));
    }
    let paper = &corpus.papers[paper_id];
    let h = pipeline.encode_paper(paper);
    let emb = model.embed(&h, &labels[paper_id]);
    let mut out = format!("paper {} — {:?} ({})\n", paper_id, paper.title, paper.year);
    for (k, v) in emb.iter().enumerate() {
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        out.push_str(&format!(
            "  {}: dim {}, ||c|| = {:.4}, head = {:?}\n",
            Subspace::from_index(k).name(),
            v.len(),
            norm,
            &v[..4.min(v.len())],
        ));
    }
    Ok(out)
}

fn analyze(args: &Args) -> Result<String, CliError> {
    let corpus = load_corpus(args.required("corpus")?)?;
    let lof_k = args.parse_num("lof-k", 20usize)?;
    let (pipeline, labels) = fit_pipeline(&corpus);
    let scorer =
        RuleScorer::new(&corpus, &pipeline.vocab, &pipeline.embeddings, &pipeline.encoder, &labels);
    let mut model = SemModel::new(SemConfig::default());
    model.train(&pipeline, &corpus, &scorer, &labels);
    let text = model.embed_corpus(&pipeline, &corpus, &labels);

    let mut out = String::from("innovation analysis (Spearman of subspace LOF vs citations):\n");
    for (d, prof) in corpus.config.disciplines.iter().enumerate() {
        let members: Vec<usize> =
            corpus.papers.iter().filter(|p| p.discipline == d).map(|p| p.id.index()).collect();
        if members.len() < lof_k + 2 {
            continue;
        }
        let emb: Vec<Vec<Vec<f32>>> = members.iter().map(|&i| text[i].clone()).collect();
        let outliers = analysis::subspace_outliers(&emb, lof_k);
        let cites: Vec<f64> =
            members.iter().map(|&i| corpus.papers[i].citations_received as f64).collect();
        let rho = analysis::outlier_citation_correlation(&outliers, &cites);
        let best = (0..NUM_SUBSPACES)
            .max_by(|&a, &b| rho[a].total_cmp(&rho[b]))
            .ok_or_else(|| CliError("no subspaces to rank".into()))?;
        out.push_str(&format!(
            "  {:20} background={:+.3} method={:+.3} result={:+.3}  (innovation lives in `{}`)\n",
            prof.name,
            rho[0],
            rho[1],
            rho[2],
            Subspace::from_index(best).name(),
        ));
    }
    Ok(out)
}

fn recommend(args: &Args) -> Result<String, CliError> {
    let corpus = load_corpus(args.required("corpus")?)?;
    let split: u16 = args.parse_num("split", 2014)?;
    let user = AuthorId(args.parse_num::<u32>("user", 0)?);
    let top: usize = args.parse_num("top", 5)?;
    if user.index() >= corpus.authors.len() {
        return Err(CliError(format!("--user must be in 0..{}", corpus.authors.len())));
    }

    let (pipeline, labels) = fit_pipeline(&corpus);
    let scorer =
        RuleScorer::new(&corpus, &pipeline.vocab, &pipeline.embeddings, &pipeline.encoder, &labels);
    let mut sem = SemModel::new(SemConfig { epochs: 6, ..Default::default() });
    sem.train(&pipeline, &corpus, &scorer, &labels);
    let text = sem.embed_corpus(&pipeline, &corpus, &labels);
    let fusion = sem.fusion_weights();

    let graph = HeteroGraph::from_corpus(&corpus, Some(split));
    let mut pairs = build_training_pairs(
        &corpus,
        &scorer,
        &fusion,
        split,
        4,
        NegativeStrategy::Defuzzed { threshold: 0.0 },
        7,
    );
    pairs.truncate(20_000);
    let mut model = NpRecModel::new(
        graph.n_nodes(),
        NpRecConfig { text_dim: sem.embed_dim(), ..Default::default() },
    );
    model.train(&graph, Some(&text), &pairs);

    // candidate pool: all new papers; rank by the user's mean ŷ
    let task = RecTask::build(&corpus, split, 20.min(corpus.papers.len() / 4), usize::MAX, 1, 1);
    let rec = model.recommender(&graph, Some(&text), &task);
    let new_papers: Vec<PaperId> =
        corpus.papers.iter().filter(|p| p.year > split).map(|p| p.id).collect();
    let mut scored: Vec<(f64, PaperId)> =
        new_papers.iter().map(|&c| (rec.score(user, c), c)).collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut out =
        format!("top-{top} new-paper recommendations for author {} (split {split}):\n", user.0);
    for (rank, (score, p)) in scored.iter().take(top).enumerate() {
        let paper = corpus.paper(*p);
        out.push_str(&format!("  {}. [{score:.3}] {} ({})\n", rank + 1, paper.title, paper.year,));
    }
    if scored.first().map(|s| s.0) == Some(0.0) {
        out.push_str("  (user has no training-era history; scores are zero)\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sem-cli-test-{name}-{}", std::process::id()))
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_flag_value_ordering_is_unambiguous() {
        let switches = &["resume", "progress"];
        // switches and value flags can interleave in any order
        for argv in [
            argv(&["--resume", "--out", "dir", "--progress", "--epochs", "3"]),
            argv(&["--out", "dir", "--epochs", "3", "--resume", "--progress"]),
            argv(&["--progress", "--epochs", "3", "--resume", "--out", "dir"]),
        ] {
            let args = Args::parse_with_switches(&argv, switches).unwrap();
            assert_eq!(args.get("out"), Some("dir"));
            assert_eq!(args.parse_num("epochs", 0usize).unwrap(), 3);
            assert!(args.switch("resume") && args.switch("progress"));
        }
        // a value flag must not swallow the next --flag token
        let err = Args::parse_with_switches(&argv(&["--out", "--resume"]), switches)
            .err()
            .unwrap()
            .to_string();
        assert!(err.contains("--out needs a value"), "{err}");
        // trailing value flag without a value
        assert!(Args::parse_with_switches(&argv(&["--resume", "--out"]), switches).is_err());
    }

    #[test]
    fn args_inline_values_and_switch_overrides() {
        let switches = &["resume"];
        let args = Args::parse_with_switches(
            &argv(&["--out=dir", "--resume=false", "--epochs=4"]),
            switches,
        )
        .unwrap();
        assert_eq!(args.get("out"), Some("dir"));
        assert_eq!(args.parse_num("epochs", 0usize).unwrap(), 4);
        assert!(!args.switch("resume"), "--resume=false must read as off");
        assert!(
            Args::parse_with_switches(&argv(&["--resume=maybe"]), switches).is_err(),
            "switches only accept true/false"
        );
        // inline values may themselves start with dashes
        let args = Args::parse(&argv(&["--title=--weird--"])).unwrap();
        assert_eq!(args.get("title"), Some("--weird--"));
    }

    #[test]
    fn args_reject_duplicates_and_bare_dashes() {
        let err = Args::parse(&argv(&["--out", "a", "--out", "b"])).err().unwrap().to_string();
        assert!(err.contains("more than once"), "{err}");
        assert!(
            Args::parse_with_switches(&argv(&["--resume", "--resume"]), &["resume"]).is_err(),
            "duplicate switches are also errors"
        );
        assert!(Args::parse(&argv(&["--", "x"])).is_err());
        assert!(Args::parse(&argv(&["--=v"])).is_err());
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&argv(&["help"])).unwrap().contains("recommend"));
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&["generate", "--preset"])).is_err()); // missing value
        assert!(run(&argv(&["generate", "oops"])).is_err()); // not a flag
    }

    #[test]
    fn generate_stats_roundtrip() {
        let corpus_path = tmp("corpus.json");
        let out = run(&argv(&[
            "generate",
            "--preset",
            "patent",
            "--papers",
            "80",
            "--authors",
            "40",
            "--out",
            corpus_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("80 papers"));
        let stats = run(&argv(&["stats", "--corpus", corpus_path.to_str().unwrap()])).unwrap();
        assert!(stats.contains("papers: 80"));
        assert!(stats.contains("venues: 0"));
        std::fs::remove_file(&corpus_path).ok();
    }

    #[test]
    fn generate_rejects_bad_preset_and_numbers() {
        assert!(run(&argv(&["generate", "--preset", "nope", "--out", "/tmp/x.json"])).is_err());
        assert!(run(&argv(&[
            "generate",
            "--preset",
            "acm",
            "--papers",
            "many",
            "--out",
            "/tmp/x.json"
        ]))
        .is_err());
    }

    #[test]
    fn train_checkpoints_and_resumes() {
        let corpus_path = tmp("ckpt-corpus.json");
        let model_dir = tmp("ckpt-model");
        let ckpt_dir = tmp("ckpt-dir");
        std::fs::remove_dir_all(&ckpt_dir).ok();
        run(&argv(&[
            "generate",
            "--preset",
            "acm",
            "--papers",
            "120",
            "--authors",
            "50",
            "--out",
            corpus_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "train",
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--out",
            model_dir.to_str().unwrap(),
            "--epochs",
            "2",
            "--checkpoint-dir",
            ckpt_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(ckpt_dir.join("ckpt-00001.json").exists());
        let out = run(&argv(&[
            "train",
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--out",
            model_dir.to_str().unwrap(),
            "--epochs",
            "3",
            "--checkpoint-dir",
            ckpt_dir.to_str().unwrap(),
            "--resume",
        ]))
        .unwrap();
        assert!(out.contains("resumed after epoch 2"), "{out}");
        std::fs::remove_file(&corpus_path).ok();
        std::fs::remove_dir_all(&model_dir).ok();
        std::fs::remove_dir_all(&ckpt_dir).ok();
    }

    #[test]
    fn train_watchdog_recovers_from_injected_nan() {
        let corpus_path = tmp("wd-corpus.json");
        let model_dir = tmp("wd-model");
        run(&argv(&[
            "generate",
            "--preset",
            "acm",
            "--papers",
            "120",
            "--authors",
            "50",
            "--out",
            corpus_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&argv(&[
            "train",
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--out",
            model_dir.to_str().unwrap(),
            "--epochs",
            "2",
            "--watchdog",
            "--fault-nan-step",
            "0",
        ]))
        .unwrap();
        assert!(out.contains("trained SEM"), "{out}");
        // the injected NaN was rolled back: reported losses are finite
        assert!(!out.contains("NaN"), "{out}");
        // bad fault flags are rejected up front
        assert!(run(&argv(&[
            "train",
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--out",
            model_dir.to_str().unwrap(),
            "--fault-nan-step",
            "soon",
        ]))
        .is_err());
        std::fs::remove_file(&corpus_path).ok();
        std::fs::remove_dir_all(&model_dir).ok();
    }

    #[test]
    fn train_embed_roundtrip() {
        let corpus_path = tmp("train-corpus.json");
        let model_dir = tmp("model");
        run(&argv(&[
            "generate",
            "--preset",
            "acm",
            "--papers",
            "150",
            "--authors",
            "60",
            "--out",
            corpus_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&argv(&[
            "train",
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--out",
            model_dir.to_str().unwrap(),
            "--epochs",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("trained SEM"));
        let emb =
            run(&argv(&["embed", "--model", model_dir.to_str().unwrap(), "--paper", "3"])).unwrap();
        assert!(emb.contains("background"));
        assert!(emb.contains("method"));
        // out-of-range paper id
        assert!(run(&argv(&[
            "embed",
            "--model",
            model_dir.to_str().unwrap(),
            "--paper",
            "100000",
        ]))
        .is_err());
        std::fs::remove_file(&corpus_path).ok();
        std::fs::remove_dir_all(&model_dir).ok();
    }
}
