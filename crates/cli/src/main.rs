//! `sem` binary entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match sem_cli::run(&argv) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
