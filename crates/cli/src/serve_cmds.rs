//! The serve-family commands: `index build`, `index query`, `index verify`
//! and `ingest`.
//!
//! All four speak JSON on stdout (they are meant to be scripted against)
//! and share the model directory produced by `sem train`. The index file is
//! a crash-safe [`IndexStore`] snapshot — checksummed header, atomic
//! rename, write-ahead journal alongside — so `index query` and `ingest`
//! recover to the last durable state automatically, `ingest` journals the
//! new paper before acknowledging it, and `index verify` gives operators
//! (and the recovery tests) a machine-readable integrity report.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use sem_corpus::{Corpus, Paper, PaperId, Sentence, Subspace, NUM_SUBSPACES};
use sem_serve::{
    parse_weights, AnnIndex, DegradeReason, EngineConfig, FacetLayout, IndexConfig, IndexStore,
    PaperEmbedder, QueryEngine, QueryRequest, RerankParams, ShardConfig, ShardManifest,
    ShardRouter, DEFAULT_CANDIDATES,
};
use serde::Serialize;

use crate::commands::{load_model, Args, CliError};

fn to_pretty<T: Serialize>(value: &T) -> Result<String, CliError> {
    serde_json::to_string_pretty(value).map_err(|e| CliError(format!("report serialisation: {e}")))
}

/// The `--facets WEIGHTS --diversity λ --candidates C` triple of `index
/// query`, parsed but not yet resolved against an index's layout.
struct FacetArgs {
    facets: Option<String>,
    diversity: f32,
    candidates: usize,
}

impl FacetArgs {
    fn from_args(args: &Args) -> Result<FacetArgs, CliError> {
        Ok(FacetArgs {
            facets: args.get("facets").map(str::to_string),
            diversity: args.parse_num("diversity", 0.0f32)?,
            candidates: args.parse_num("candidates", DEFAULT_CANDIDATES)?,
        })
    }

    /// Resolves the flags against the layout the index actually serves.
    /// No facet flags at all means the plain stage-1 path (`None`);
    /// malformed specs are typed usage errors.
    fn to_params(&self, layout: &FacetLayout) -> Result<Option<RerankParams>, CliError> {
        if self.facets.is_none() && self.diversity == 0.0 && self.candidates == DEFAULT_CANDIDATES {
            return Ok(None);
        }
        let weights = match &self.facets {
            Some(spec) => parse_weights(spec, layout)?,
            None => vec![1.0; layout.len()],
        };
        let params = RerankParams { weights, lambda: self.diversity, candidates: self.candidates };
        params.validate(layout)?;
        Ok(Some(params))
    }
}

/// Dispatches `sem index <build|query|verify|probe|maintain> ...`.
pub(crate) fn index(argv: &[String]) -> Result<String, CliError> {
    let Some(sub) = argv.first() else {
        return Err(CliError("usage: sem index <build|query|verify|probe|maintain> ...".into()));
    };
    if sub == "maintain" {
        // maintenance actions are valueless switches: presence means "do it"
        let args = Args::parse_with_switches(&argv[1..], &["compact", "recluster", "status"])?;
        return index_maintain(&args);
    }
    let args = Args::parse(&argv[1..])?;
    match sub.as_str() {
        "build" => index_build(&args),
        "query" => index_query(&args),
        "verify" => index_verify(&args),
        "probe" => index_probe(&args),
        other => Err(CliError(format!("unknown index subcommand {other:?}"))),
    }
}

#[derive(Serialize)]
struct BuildSummary {
    papers: usize,
    dim: usize,
    mode: String,
    shards: usize,
    quantized: bool,
    elapsed_ms: u64,
    out: String,
}

/// `sem index build --model DIR --out index.snap [--shards N] [--nlist N]
/// [--nprobe N] [--flat-threshold N] [--quantize sq8]`: embeds every
/// corpus paper and builds the ANN index, persisted as a crash-safe
/// snapshot. With `--shards N > 1` the corpus is partitioned round-robin
/// into a sharded family (`index.snap.shard0..N-1` + `index.snap.manifest`)
/// that `index query`, `ingest` and `index verify` detect automatically.
/// `--quantize sq8` stores SQ8 codes alongside the vectors and serves
/// stage-0 scans from them (final scores stay exact via f32 rescore).
fn index_build(args: &Args) -> Result<String, CliError> {
    let dir = PathBuf::from(args.required("model")?);
    let out = args.required("out")?;
    let shards: usize = args.parse_num("shards", 1usize)?;
    let quantize = match args.get("quantize") {
        None => false,
        Some("sq8") => true,
        Some(other) => {
            return Err(CliError(format!("unknown --quantize scheme {other:?} (try sq8)")))
        }
    };
    let config = IndexConfig {
        nlist: args.parse_num("nlist", 0usize)?,
        nprobe: args.parse_num("nprobe", 0usize)?,
        flat_threshold: args.parse_num("flat-threshold", 256usize)?,
        ..Default::default()
    };
    let (corpus, pipeline, _labels, sem) = load_model(&dir)?;
    let t0 = Instant::now();
    let embedder = PaperEmbedder::new(&pipeline, &sem);
    let vectors = embedder.embed_corpus(&corpus);
    let summary = if shards > 1 {
        let router = ShardRouter::try_build(
            vectors,
            ShardConfig { shards, index: config, ..Default::default() },
        )?;
        // record the embedder's facet structure so `index query --facets`
        // can rescore per subspace
        router.set_layout(embedder.layout())?;
        if quantize {
            // quantize before the stores attach so the persisted
            // snapshots carry the codes
            router.enable_sq8()?;
        }
        router.attach_stores(std::path::Path::new(out))?;
        router.persist_all()?;
        BuildSummary {
            papers: router.len(),
            dim: router.dim(),
            mode: "sharded".into(),
            shards,
            quantized: quantize,
            elapsed_ms: t0.elapsed().as_millis() as u64,
            out: out.to_string(),
        }
    } else {
        let mut index = AnnIndex::try_build(vectors, config)?.with_layout(embedder.layout())?;
        if quantize {
            index.enable_sq8()?;
        }
        IndexStore::open(out).save_snapshot(&index)?;
        BuildSummary {
            papers: index.len(),
            dim: index.dim(),
            mode: if index.is_flat() { "flat".into() } else { "ivf".into() },
            shards: 1,
            quantized: quantize,
            elapsed_ms: t0.elapsed().as_millis() as u64,
            out: out.to_string(),
        }
    };
    to_pretty(&summary)
}

/// `sem index verify --index index.snap`: checks the snapshot header +
/// checksum and scans the journal, printing a JSON integrity report.
/// On a sharded family (manifest present) every shard store is walked and
/// the report carries a per-shard verdict. Exit status is an error when
/// any store would not recover cleanly.
fn index_verify(args: &Args) -> Result<String, CliError> {
    let path = args.required("index")?;
    if ShardManifest::exists(std::path::Path::new(path)) {
        let report = sem_serve::verify_sharded(std::path::Path::new(path))?;
        let rendered = to_pretty(&report)?;
        return if report.ok {
            Ok(rendered)
        } else {
            Err(CliError(format!("sharded index failed verification:\n{rendered}")))
        };
    }
    let store = IndexStore::open(path);
    let report = store.verify();
    let rendered = to_pretty(&report)?;
    if report.ok {
        Ok(rendered)
    } else {
        Err(CliError(format!("index failed verification:\n{rendered}")))
    }
}

/// Report for `sem index probe`: per-shard health-probe outcomes, the
/// same check the in-process [`sem_serve::ShardSupervisor`] runs.
#[derive(Serialize)]
struct ProbeSummary {
    mode: String,
    shards: usize,
    serving_ok: bool,
    /// Ordinals whose journal tail exceeds `--max-journal-entries`
    /// (empty without the flag or when every tail is within budget).
    tail_alarms: Vec<usize>,
    probes: Vec<sem_serve::ProbeReport>,
}

/// `sem index probe --index index.snap [--check-store true]
/// [--max-journal-entries N]`: runs the supervisor's health probe against
/// each shard of the family (or the single snapshot) and prints a JSON
/// verdict. Exit status is an error when any serving probe fails — the
/// operator-facing analogue of a supervisor trip. With `--check-store
/// true --max-journal-entries N` an un-compacted journal tail longer than
/// N also alarms: the shard serves fine today but recovery replay (and
/// the next compaction pause) is growing without bound.
fn index_probe(args: &Args) -> Result<String, CliError> {
    let path = args.required("index")?;
    let check_store = args.get("check-store").map(|v| v == "true").unwrap_or(false);
    let max_tail: Option<usize> = match args.get("max-journal-entries") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError(format!("--max-journal-entries: cannot parse {v:?}")))?,
        ),
    };
    if max_tail.is_some() && !check_store {
        return Err(CliError(
            "--max-journal-entries needs --check-store true (tails live on disk)".into(),
        ));
    }
    let base = std::path::Path::new(path);
    let (mode, router) = if ShardManifest::exists(base) {
        let (router, _recoveries) = ShardRouter::open(base, ShardConfig::default())?;
        ("sharded".to_string(), router)
    } else {
        // a single snapshot probes as a one-shard family
        let (index, _recovery) = load_index(path)?;
        let vectors = (0..index.len()).map(|i| index.vector(i).to_vec()).collect();
        let router =
            ShardRouter::try_build(vectors, ShardConfig { shards: 1, ..Default::default() })?;
        ("single".to_string(), router)
    };
    let probes: Vec<sem_serve::ProbeReport> = (0..router.num_shards())
        .map(|i| router.shard(i).probe(check_store))
        .collect::<Result<_, _>>()?;
    let serving_ok = probes.iter().all(sem_serve::ProbeReport::serving_ok);
    let tail_alarms: Vec<usize> = match max_tail {
        None => Vec::new(),
        Some(max) => probes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.journal_tail.is_some_and(|t| t > max))
            .map(|(i, _)| i)
            .collect(),
    };
    let ok = serving_ok && tail_alarms.is_empty();
    let report =
        ProbeSummary { mode, shards: router.num_shards(), serving_ok, tail_alarms, probes };
    let rendered = to_pretty(&report)?;
    if ok {
        Ok(rendered)
    } else {
        Err(CliError(format!("index failed its health probe:\n{rendered}")))
    }
}

/// Report for `sem index maintain`: what ran plus the post-maintenance
/// per-shard status.
#[derive(Serialize)]
struct MaintainSummary {
    shards: usize,
    compactions: Vec<sem_serve::CompactionReport>,
    reclusters: Vec<sem_serve::ReclusterReport>,
    status: Vec<sem_serve::MaintenanceStatus>,
}

/// `sem index maintain --index index.snap [--compact] [--recluster]
/// [--status]`: operator-driven maintenance on a sharded family.
/// `--compact` folds each shard's journal into a fresh snapshot online
/// (the same protocol the background [`sem_serve::Maintainer`] uses),
/// `--recluster` forces a drift re-train with epoch handover (persisted
/// when the table actually changed), and the report always carries the
/// per-shard maintenance status (`--status` alone is a pure read).
fn index_maintain(args: &Args) -> Result<String, CliError> {
    let path = args.required("index")?;
    let base = std::path::Path::new(path);
    if !ShardManifest::exists(base) {
        return Err(CliError(
            "index maintain needs a sharded family (build with --shards N > 1)".into(),
        ));
    }
    if !(args.switch("compact") || args.switch("recluster") || args.switch("status")) {
        return Err(CliError(
            "usage: sem index maintain --index BASE [--compact] [--recluster] [--status]".into(),
        ));
    }
    let (router, _recoveries) = ShardRouter::open(base, ShardConfig::default())?;
    let mut compactions = Vec::new();
    if args.switch("compact") {
        for i in 0..router.num_shards() {
            compactions.push(router.compact_shard_online(i)?);
        }
    }
    let mut reclusters = Vec::new();
    if args.switch("recluster") {
        for i in 0..router.num_shards() {
            reclusters.push(router.recluster_shard(i)?);
        }
        if reclusters.iter().any(|r| r.changed) {
            // the new centroid table lives in memory until re-snapshotted
            router.persist_all()?;
        }
    }
    let report = MaintainSummary {
        shards: router.num_shards(),
        compactions,
        reclusters,
        status: router.maintenance_status(),
    };
    to_pretty(&report)
}

#[derive(Serialize)]
struct HitOut {
    id: usize,
    score: f32,
    title: String,
    year: u16,
}

#[derive(Serialize)]
struct QueryOut {
    paper: usize,
    degraded: bool,
    reason: Option<DegradeReason>,
    hits: Vec<HitOut>,
}

#[derive(Serialize)]
struct QueryReport {
    results: Vec<QueryOut>,
    recovery: RecoveryOut,
    stats: sem_serve::StatsSnapshot,
}

/// What loading the index found on disk (journal replay counters).
#[derive(Serialize)]
struct RecoveryOut {
    replayed: usize,
    skipped: usize,
    discarded_tail: bool,
}

fn describe(corpus: &Corpus, id: usize) -> (String, u16) {
    match corpus.papers.get(id) {
        Some(p) => (p.title.clone(), p.year),
        None => ("(ingested after index build)".into(), 0),
    }
}

/// Loads the index through the store (snapshot + journal replay) and
/// reports what recovery saw.
fn load_index(path: &str) -> Result<(AnnIndex, RecoveryOut), CliError> {
    let recovery = IndexStore::open(path).load()?;
    let out = RecoveryOut {
        replayed: recovery.replayed,
        skipped: recovery.skipped,
        discarded_tail: recovery.discarded_tail,
    };
    Ok((recovery.index, out))
}

/// Report for a query served by the sharded scatter-gather path.
#[derive(Serialize)]
struct ShardedQueryReport {
    results: Vec<QueryOut>,
    recoveries: Vec<RecoveryOut>,
    stats: sem_serve::RouterStatsSnapshot,
}

/// The sharded branch of `index query`: opens the family at `base`, fans
/// each query across shards and heap-merges the per-shard top-K.
fn index_query_sharded(
    base: &str,
    corpus: &Corpus,
    embedder: &PaperEmbedder,
    papers: &[usize],
    k: usize,
    deadline_ms: u64,
    facet_args: &FacetArgs,
) -> Result<String, CliError> {
    let (router, recoveries) =
        ShardRouter::open(std::path::Path::new(base), ShardConfig::default())?;
    if router.dim() != embedder.dim() {
        return Err(CliError(format!(
            "index width {} does not match the model's {}",
            router.dim(),
            embedder.dim()
        )));
    }
    let rerank = facet_args.to_params(&router.layout())?;
    let requests: Vec<QueryRequest> = papers
        .iter()
        .map(|&p| {
            let mut r = QueryRequest::new(embedder.embed_indexed(corpus, PaperId::from(p)), k);
            r.deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
            match &rerank {
                Some(params) => r.with_rerank(params.clone()),
                None => r,
            }
        })
        .collect();
    let responses = router.query_batch(requests)?;
    let results = papers
        .iter()
        .zip(responses)
        .map(|(&p, response)| QueryOut {
            paper: p,
            degraded: response.degraded,
            reason: response.reason,
            hits: response
                .hits
                .into_iter()
                .map(|h| {
                    let (title, year) = describe(corpus, h.id);
                    HitOut { id: h.id, score: h.score, title, year }
                })
                .collect(),
        })
        .collect();
    let report = ShardedQueryReport {
        results,
        recoveries: recoveries
            .into_iter()
            .map(|r| RecoveryOut {
                replayed: r.replayed,
                skipped: r.skipped,
                discarded_tail: r.discarded_tail,
            })
            .collect(),
        stats: router.stats(),
    };
    to_pretty(&report)
}

/// `sem index query --model DIR --index index.snap --paper ID[,ID...]
/// [--k K] [--deadline-ms MS]
/// [--facets bg=0.2,method=0.7,result=0.1] [--diversity λ]
/// [--candidates C]`: answers one coalesced batch of top-K queries and
/// reports the engine counters. With a deadline, exhausted budgets yield
/// partial results flagged `degraded` instead of blocking. A sharded
/// family (manifest present) is served scatter-gather. Any facet flag
/// switches on the two-stage path: the top-C stage-1 candidates are
/// rescored with the per-subspace weights, and `--diversity λ` trades
/// relevance against facet coverage MMR-style.
fn index_query(args: &Args) -> Result<String, CliError> {
    let dir = PathBuf::from(args.required("model")?);
    let index_path = args.required("index")?;
    let k: usize = args.parse_num("k", 5)?;
    let deadline_ms: u64 = args.parse_num("deadline-ms", 0)?;
    let facet_args = FacetArgs::from_args(args)?;
    let papers: Vec<usize> = args
        .required("paper")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| CliError(format!("--paper: cannot parse {s:?}"))))
        .collect::<Result<_, _>>()?;
    let (corpus, pipeline, _labels, sem) = load_model(&dir)?;
    for &p in &papers {
        if p >= corpus.papers.len() {
            return Err(CliError(format!("--paper must be in 0..{}", corpus.papers.len())));
        }
    }
    let embedder = PaperEmbedder::new(&pipeline, &sem);
    if ShardManifest::exists(std::path::Path::new(index_path)) {
        return index_query_sharded(
            index_path,
            &corpus,
            &embedder,
            &papers,
            k,
            deadline_ms,
            &facet_args,
        );
    }
    let (index, recovery) = load_index(index_path)?;
    if index.dim() != embedder.dim() {
        return Err(CliError(format!(
            "index width {} does not match the model's {}",
            index.dim(),
            embedder.dim()
        )));
    }
    let rerank = facet_args.to_params(&index.layout())?;
    let config = EngineConfig {
        default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        ..Default::default()
    };
    let engine = QueryEngine::new(index, config);
    let requests: Vec<QueryRequest> = papers
        .iter()
        .map(|&p| {
            let r = QueryRequest::new(embedder.embed_indexed(&corpus, PaperId::from(p)), k);
            match &rerank {
                Some(params) => r.with_rerank(params.clone()),
                None => r,
            }
        })
        .collect();
    let responses = engine.query_batch(requests)?;
    if let Some(path) = args.get("metrics-out") {
        crate::metrics_cmd::write_metrics_out(&engine.metrics(), path)?;
    }
    let results = papers
        .iter()
        .zip(responses)
        .map(|(&p, response)| QueryOut {
            paper: p,
            degraded: response.degraded,
            reason: response.reason,
            hits: response
                .hits
                .into_iter()
                .map(|h| {
                    let (title, year) = describe(&corpus, h.id);
                    HitOut { id: h.id, score: h.score, title, year }
                })
                .collect(),
        })
        .collect();
    let report = QueryReport { results, recovery, stats: engine.stats() };
    to_pretty(&report)
}

#[derive(Serialize)]
struct IngestReport {
    id: usize,
    durable: bool,
    title: String,
    sentences: usize,
    self_rank: usize,
    hits: Vec<HitOut>,
    index_len: usize,
    recovery: RecoveryOut,
    out: String,
}

/// Builds a [`Paper`] from raw title/abstract text. Gold sentence tags are
/// placeholders — serving only uses the CRF's *predicted* labels.
fn paper_from_text(title: &str, abstract_text: &str, year: u16, id: usize) -> Paper {
    let sentences: Vec<Sentence> = abstract_text
        .split('.')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| Sentence { text: s.to_string(), label: Subspace::Background })
        .collect();
    Paper {
        id: PaperId::from(id),
        title: title.to_string(),
        sentences,
        keywords: Vec::new(),
        references: Vec::new(),
        authors: Vec::new(),
        venue: None,
        year,
        discipline: 0,
        category: None,
        innovation: [0.0; NUM_SUBSPACES],
        citations_received: 0,
    }
}

/// The sharded branch of `ingest`: the paper routes to the shard owning
/// the next global id, journals there (fsync before ack), and only that
/// shard's cache is invalidated before the family is re-snapshotted.
fn ingest_sharded(
    base: &str,
    corpus: &Corpus,
    embedder: &PaperEmbedder,
    title: &str,
    abstract_text: &str,
    year: u16,
    k: usize,
) -> Result<String, CliError> {
    let (router, recoveries) =
        ShardRouter::open(std::path::Path::new(base), ShardConfig::default())?;
    if router.dim() != embedder.dim() {
        return Err(CliError(format!(
            "index width {} does not match the model's {}",
            router.dim(),
            embedder.dim()
        )));
    }
    let paper = paper_from_text(title, abstract_text, year, router.len());
    if paper.sentences.is_empty() {
        return Err(CliError("--abstract has no sentences".into()));
    }
    let vector = embedder.embed_new(&paper);
    let ack = router.ingest_vector(vector.clone())?;
    let hits = router.query(vector, k)?.hits;
    let self_rank = hits.iter().position(|h| h.id == ack.id).map(|r| r + 1).unwrap_or(0);
    // compact every shard's journal into a fresh atomic snapshot
    router.persist_all()?;
    let report = IngestReport {
        id: ack.id,
        durable: ack.durable,
        title: title.to_string(),
        sentences: paper.sentences.len(),
        self_rank,
        hits: hits
            .into_iter()
            .map(|h| {
                let (t, y) =
                    if h.id == ack.id { (title.to_string(), year) } else { describe(corpus, h.id) };
                HitOut { id: h.id, score: h.score, title: t, year: y }
            })
            .collect(),
        index_len: router.len(),
        recovery: RecoveryOut {
            replayed: recoveries.iter().map(|r| r.replayed).sum(),
            skipped: recoveries.iter().map(|r| r.skipped).sum(),
            discarded_tail: recoveries.iter().any(|r| r.discarded_tail),
        },
        out: base.to_string(),
    };
    to_pretty(&report)
}

/// `sem ingest --model DIR --index index.snap --title T --abstract TEXT
/// [--year Y] [--k K] [--out index.snap]`: embeds a brand-new zero-citation
/// paper, journals it (fsync) before acknowledging, inserts it without
/// rebuilding, compacts into a fresh snapshot and queries the paper back.
/// On a sharded family the write routes to exactly the owning shard.
pub(crate) fn ingest(args: &Args) -> Result<String, CliError> {
    let dir = PathBuf::from(args.required("model")?);
    let index_path = args.required("index")?;
    let title = args.required("title")?;
    let abstract_text = args.required("abstract")?;
    let k: usize = args.parse_num("k", 5)?;
    let out = args.get("out").unwrap_or(index_path).to_string();
    let (corpus, pipeline, _labels, sem) = load_model(&dir)?;
    let year: u16 =
        args.parse_num("year", corpus.papers.iter().map(|p| p.year).max().unwrap_or(2020) + 1)?;
    let embedder = PaperEmbedder::new(&pipeline, &sem);
    if ShardManifest::exists(std::path::Path::new(index_path)) {
        return ingest_sharded(index_path, &corpus, &embedder, title, abstract_text, year, k);
    }
    let (index, recovery) = load_index(index_path)?;
    if index.dim() != embedder.dim() {
        return Err(CliError(format!(
            "index width {} does not match the model's {}",
            index.dim(),
            embedder.dim()
        )));
    }
    let paper = paper_from_text(title, abstract_text, year, index.len());
    if paper.sentences.is_empty() {
        return Err(CliError("--abstract has no sentences".into()));
    }
    let engine = QueryEngine::new(index, EngineConfig::default());
    engine.attach_store(IndexStore::open(&out));
    let vector = embedder.embed_new(&paper);
    let ack = engine.ingest_vector(vector.clone())?;
    let hits = engine.query(vector, k)?.hits;
    let self_rank = hits.iter().position(|h| h.id == ack.id).map(|r| r + 1).unwrap_or(0);
    // compact journal + grown index into a fresh atomic snapshot
    engine.persist()?;
    let index_len = engine.with_index(|i| i.len())?;
    if let Some(path) = args.get("metrics-out") {
        crate::metrics_cmd::write_metrics_out(&engine.metrics(), path)?;
    }
    let report = IngestReport {
        id: ack.id,
        durable: ack.durable,
        title: title.to_string(),
        sentences: paper.sentences.len(),
        self_rank,
        hits: hits
            .into_iter()
            .map(|h| {
                let (t, y) = if h.id == ack.id {
                    (title.to_string(), year)
                } else {
                    describe(&corpus, h.id)
                };
                HitOut { id: h.id, score: h.score, title: t, year: y }
            })
            .collect(),
        index_len,
        recovery,
        out,
    };
    to_pretty(&report)
}

#[cfg(test)]
mod tests {
    use crate::commands::run;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sem-serve-cli-{name}-{}", std::process::id()))
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// The acceptance demo, end to end: generate → train → index build →
    /// verify → batched query → ingest a brand-new paper → it comes back
    /// top-ranked and the grown snapshot verifies clean.
    #[test]
    fn index_build_query_ingest_roundtrip() {
        let corpus_path = tmp("corpus.json");
        let model_dir = tmp("model");
        let index_path = tmp("index.snap");
        run(&argv(&[
            "generate",
            "--preset",
            "acm",
            "--papers",
            "130",
            "--authors",
            "50",
            "--out",
            corpus_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "train",
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--out",
            model_dir.to_str().unwrap(),
            "--epochs",
            "1",
        ]))
        .unwrap();

        let built = run(&argv(&[
            "index",
            "build",
            "--model",
            model_dir.to_str().unwrap(),
            "--out",
            index_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(built.contains("\"papers\": 130"), "{built}");
        assert!(built.contains("\"mode\": \"flat\""), "{built}");

        // the fresh snapshot passes verification and reports the store
        // format version plus per-facet segment checksums
        let verified =
            run(&argv(&["index", "verify", "--index", index_path.to_str().unwrap()])).unwrap();
        assert!(verified.contains("\"ok\": true"), "{verified}");
        assert!(verified.contains("\"format\": \"v3\""), "{verified}");
        for facet in ["bg", "method", "result"] {
            assert!(verified.contains(&format!("\"name\": \"{facet}\"")), "{verified}");
        }

        // and the health probe, loaded as a one-shard family
        let probed =
            run(&argv(&["index", "probe", "--index", index_path.to_str().unwrap()])).unwrap();
        assert!(probed.contains("\"mode\": \"single\""), "{probed}");
        assert!(probed.contains("\"serving_ok\": true"), "{probed}");

        // batched query: each paper's own vector must rank itself first
        let q = run(&argv(&[
            "index",
            "query",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--paper",
            "3,40",
            "--k",
            "4",
        ]))
        .unwrap();
        assert!(q.contains("\"paper\": 3"), "{q}");
        assert!(q.contains("\"id\": 3"), "{q}");
        assert!(q.contains("\"id\": 40"), "{q}");
        assert!(q.contains("\"largest_batch\": 2"), "{q}");
        assert!(q.contains("\"degraded\": false"), "{q}");

        // a generous deadline changes nothing
        let qd = run(&argv(&[
            "index",
            "query",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--paper",
            "3",
            "--k",
            "4",
            "--deadline-ms",
            "60000",
        ]))
        .unwrap();
        assert!(qd.contains("\"degraded\": false"), "{qd}");

        // the two-stage facet path: skewed per-subspace weights + MMR
        // diversity answer cleanly (the re-weighted ranking legitimately
        // differs from the fused one, so only the shape is asserted)
        let qf = run(&argv(&[
            "index",
            "query",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--paper",
            "3",
            "--k",
            "4",
            "--facets",
            "bg=0.2,method=0.7,result=0.1",
            "--diversity",
            "0.3",
            "--candidates",
            "50",
        ]))
        .unwrap();
        assert!(qf.contains("\"paper\": 3"), "{qf}");
        assert!(qf.contains("\"degraded\": false"), "{qf}");
        assert_eq!(qf.matches("\"id\":").count(), 4, "{qf}");

        // malformed facet specs are typed usage errors, not panics
        let bad = run(&argv(&[
            "index",
            "query",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--paper",
            "3",
            "--facets",
            "bogus=1.0",
        ]))
        .unwrap_err()
        .to_string();
        assert!(bad.contains("invalid facet spec"), "{bad}");

        let ing = run(&argv(&[
            "ingest",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--title",
            "A brand new subspace paper",
            "--abstract",
            "Prior work studies embeddings. We propose a novel subspace method. \
             Experiments show strong results.",
            "--k",
            "5",
        ]))
        .unwrap();
        assert!(ing.contains("\"id\": 130"), "{ing}");
        assert!(ing.contains("\"durable\": true"), "{ing}");
        assert!(ing.contains("\"self_rank\": 1"), "{ing}");
        assert!(ing.contains("\"index_len\": 131"), "{ing}");

        // the grown index was persisted and compacted: it verifies clean
        // and querying it again still works
        let v2 = run(&argv(&["index", "verify", "--index", index_path.to_str().unwrap()])).unwrap();
        assert!(v2.contains("\"ok\": true"), "{v2}");
        assert!(v2.contains("\"count\": 131"), "{v2}");
        let q2 = run(&argv(&[
            "index",
            "query",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--paper",
            "3",
            "--k",
            "4",
        ]))
        .unwrap();
        assert!(q2.contains("\"paper\": 3"), "{q2}");

        std::fs::remove_file(&corpus_path).ok();
        std::fs::remove_file(&index_path).ok();
        std::fs::remove_dir_all(&model_dir).ok();
    }

    /// The sharded family end to end: build with `--shards`, per-shard
    /// verify, scatter-gather query, routed ingest, verify again.
    #[test]
    fn sharded_build_query_ingest_roundtrip() {
        let corpus_path = tmp("sh-corpus.json");
        let model_dir = tmp("sh-model");
        let index_path = tmp("sh-index.snap");
        run(&argv(&[
            "generate",
            "--preset",
            "acm",
            "--papers",
            "90",
            "--authors",
            "40",
            "--out",
            corpus_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "train",
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--out",
            model_dir.to_str().unwrap(),
            "--epochs",
            "1",
        ]))
        .unwrap();

        // an unknown quantization scheme is refused at the door
        assert!(run(&argv(&[
            "index",
            "build",
            "--model",
            model_dir.to_str().unwrap(),
            "--out",
            index_path.to_str().unwrap(),
            "--quantize",
            "pq",
        ]))
        .is_err());

        // the family is built quantized: SQ8 codes persist with each
        // shard snapshot and serve the stage-0 scan below
        let built = run(&argv(&[
            "index",
            "build",
            "--model",
            model_dir.to_str().unwrap(),
            "--out",
            index_path.to_str().unwrap(),
            "--shards",
            "3",
            "--quantize",
            "sq8",
        ]))
        .unwrap();
        assert!(built.contains("\"papers\": 90"), "{built}");
        assert!(built.contains("\"mode\": \"sharded\""), "{built}");
        assert!(built.contains("\"shards\": 3"), "{built}");
        assert!(built.contains("\"quantized\": true"), "{built}");

        // per-shard integrity report, all clean, with per-segment code
        // checksums for the quantized payloads
        let verified =
            run(&argv(&["index", "verify", "--index", index_path.to_str().unwrap()])).unwrap();
        assert!(verified.contains("\"ok\": true"), "{verified}");
        assert!(verified.contains("\"shard\": 2"), "{verified}");
        assert!(verified.contains("\"quant\""), "{verified}");

        // supervisor-style health probe: every shard self-queries clean,
        // and --check-store adds the per-shard on-disk verdict
        let probed = run(&argv(&[
            "index",
            "probe",
            "--index",
            index_path.to_str().unwrap(),
            "--check-store",
            "true",
        ]))
        .unwrap();
        assert!(probed.contains("\"mode\": \"sharded\""), "{probed}");
        assert!(probed.contains("\"serving_ok\": true"), "{probed}");
        assert!(probed.contains("\"self_query_ok\": true"), "{probed}");
        assert!(probed.contains("\"store_ok\": true"), "{probed}");
        assert!(probed.contains("\"shard\": 2"), "{probed}");

        // scatter-gather query: a paper's own vector ranks itself first
        let q = run(&argv(&[
            "index",
            "query",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--paper",
            "7",
            "--k",
            "4",
        ]))
        .unwrap();
        assert!(q.contains("\"paper\": 7"), "{q}");
        assert!(q.contains("\"id\": 7"), "{q}");
        assert!(q.contains("\"degraded\": false"), "{q}");
        assert!(q.contains("\"shards\": 3"), "{q}");

        // the facet path also rides the scatter-gather fan-out
        let qf = run(&argv(&[
            "index",
            "query",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--paper",
            "7",
            "--k",
            "4",
            "--facets",
            "bg=0.2,method=0.7,result=0.1",
            "--diversity",
            "0.3",
        ]))
        .unwrap();
        assert!(qf.contains("\"paper\": 7"), "{qf}");
        assert!(qf.contains("\"degraded\": false"), "{qf}");
        assert_eq!(qf.matches("\"id\":").count(), 4, "{qf}");

        // routed ingest: next global id is 90, owned by shard 0 (90 % 3)
        let ing = run(&argv(&[
            "ingest",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--title",
            "A sharded subspace paper",
            "--abstract",
            "Prior work studies embeddings. We shard the serving index. \
             Latency stays flat under load.",
        ]))
        .unwrap();
        assert!(ing.contains("\"id\": 90"), "{ing}");
        assert!(ing.contains("\"durable\": true"), "{ing}");
        assert!(ing.contains("\"self_rank\": 1"), "{ing}");
        assert!(ing.contains("\"index_len\": 91"), "{ing}");

        // grown family still verifies clean, shard by shard
        let v2 = run(&argv(&["index", "verify", "--index", index_path.to_str().unwrap()])).unwrap();
        assert!(v2.contains("\"ok\": true"), "{v2}");

        // the routed ingest compacted on persist, so even a zero journal
        // budget raises no tail alarm
        let p2 = run(&argv(&[
            "index",
            "probe",
            "--index",
            index_path.to_str().unwrap(),
            "--check-store",
            "true",
            "--max-journal-entries",
            "0",
        ]))
        .unwrap();
        assert!(p2.contains("\"tail_alarms\": []"), "{p2}");

        // journal an ingest without compacting: the owning shard's tail
        // outgrows a zero budget and the probe alarms on exactly it
        let base = std::path::Path::new(index_path.to_str().unwrap());
        let (router, _recoveries) =
            sem_serve::ShardRouter::open(base, sem_serve::ShardConfig::default()).unwrap();
        let dim = router.dim();
        let owner = router.ingest_vector(vec![0.25; dim]).unwrap().id % 3;
        drop(router);
        let alarmed = run(&argv(&[
            "index",
            "probe",
            "--index",
            index_path.to_str().unwrap(),
            "--check-store",
            "true",
            "--max-journal-entries",
            "0",
        ]))
        .unwrap_err()
        .to_string();
        assert!(alarmed.contains(&format!("\"tail_alarms\": [\n    {owner}\n  ]")), "{alarmed}");
        assert!(alarmed.contains("\"serving_ok\": true"), "{alarmed}");

        // online maintenance folds the tail back into the snapshot …
        let m = run(&argv(&[
            "index",
            "maintain",
            "--index",
            index_path.to_str().unwrap(),
            "--compact",
            "--status",
        ]))
        .unwrap();
        assert_eq!(m.matches("\"pause_us\":").count(), 3, "{m}");
        assert!(m.contains("\"journal_tail\": 0"), "{m}");
        assert!(!m.contains("\"journal_tail\": 1"), "{m}");
        // … and a forced re-cluster on an undrifted corpus is a no-swap:
        // the table is bit-identical, so no handover epoch is burned
        let r = run(&argv(&[
            "index",
            "maintain",
            "--index",
            index_path.to_str().unwrap(),
            "--recluster",
        ]))
        .unwrap();
        assert!(r.contains("\"changed\": false"), "{r}");
        assert!(!r.contains("\"changed\": true"), "{r}");

        // the probe is green again under the same zero budget
        let p3 = run(&argv(&[
            "index",
            "probe",
            "--index",
            index_path.to_str().unwrap(),
            "--check-store",
            "true",
            "--max-journal-entries",
            "0",
        ]))
        .unwrap();
        assert!(p3.contains("\"tail_alarms\": []"), "{p3}");

        std::fs::remove_file(&corpus_path).ok();
        std::fs::remove_dir_all(&model_dir).ok();
        for i in 0..3 {
            let shard = PathBuf::from(format!("{}.shard{i}", index_path.display()));
            std::fs::remove_file(&shard).ok();
            std::fs::remove_file(format!("{}.journal", shard.display())).ok();
        }
        std::fs::remove_file(format!("{}.manifest", index_path.display())).ok();
    }

    #[test]
    fn serve_commands_reject_bad_input() {
        assert!(run(&argv(&["index"])).is_err());
        assert!(run(&argv(&["index", "frob"])).is_err());
        assert!(
            run(&argv(&["index", "build", "--model", "/nonexistent", "--out", "/tmp/x"])).is_err()
        );
        assert!(run(&argv(&["ingest", "--model", "/nonexistent"])).is_err());
        assert!(run(&argv(&["index", "verify", "--index", "/nonexistent/index.snap"])).is_err());
        assert!(run(&argv(&["index", "probe", "--index", "/nonexistent/index.snap"])).is_err());
        // tail budgets need the on-disk check switched on
        let err = run(&argv(&[
            "index",
            "probe",
            "--index",
            "/nonexistent/index.snap",
            "--max-journal-entries",
            "5",
        ]))
        .unwrap_err()
        .to_string();
        assert!(err.contains("--check-store"), "{err}");
        // maintain refuses single snapshots and no-op invocations
        assert!(run(&argv(&["index", "maintain", "--index", "/nonexistent/index.snap"])).is_err());
    }

    /// `index verify` detects a corrupted snapshot and fails loudly.
    #[test]
    fn verify_rejects_corruption() {
        let path = tmp("corrupt.snap");
        // a file that is neither a v1 snapshot nor legacy JSON
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        let err = run(&argv(&["index", "verify", "--index", path.to_str().unwrap()]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("\"ok\": false"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
