//! The serve-family commands: `index build`, `index query` and `ingest`.
//!
//! All three speak JSON on stdout (they are meant to be scripted against)
//! and share the model directory produced by `sem train`. The index file is
//! a self-contained [`AnnIndex`] dump; `ingest` grows it in place — no
//! retraining, no rebuild.

use std::path::{Path, PathBuf};
use std::time::Instant;

use sem_corpus::{Corpus, Paper, PaperId, Sentence, Subspace, NUM_SUBSPACES};
use sem_serve::{AnnIndex, EngineConfig, IndexConfig, PaperEmbedder, QueryEngine, QueryRequest};
use serde::Serialize;

use crate::commands::{load_model, Args, CliError};

/// Dispatches `sem index <build|query> ...`.
pub(crate) fn index(argv: &[String]) -> Result<String, CliError> {
    let Some(sub) = argv.first() else {
        return Err(CliError("usage: sem index <build|query> ...".into()));
    };
    let args = Args::parse(&argv[1..])?;
    match sub.as_str() {
        "build" => index_build(&args),
        "query" => index_query(&args),
        other => Err(CliError(format!("unknown index subcommand {other:?}"))),
    }
}

#[derive(Serialize)]
struct BuildSummary {
    papers: usize,
    dim: usize,
    mode: String,
    elapsed_ms: u64,
    out: String,
}

/// `sem index build --model DIR --out index.json [--nlist N] [--nprobe N]
/// [--flat-threshold N]`: embeds every corpus paper and builds the ANN
/// index.
fn index_build(args: &Args) -> Result<String, CliError> {
    let dir = PathBuf::from(args.required("model")?);
    let out = args.required("out")?;
    let config = IndexConfig {
        nlist: args.parse_num("nlist", 0usize)?,
        nprobe: args.parse_num("nprobe", 0usize)?,
        flat_threshold: args.parse_num("flat-threshold", 256usize)?,
        ..Default::default()
    };
    let (corpus, pipeline, _labels, sem) = load_model(&dir)?;
    let t0 = Instant::now();
    let embedder = PaperEmbedder::new(&pipeline, &sem);
    let vectors = embedder.embed_corpus(&corpus);
    let index = AnnIndex::build(vectors, config);
    std::fs::write(out, index.to_json())?;
    let summary = BuildSummary {
        papers: index.len(),
        dim: index.dim(),
        mode: if index.is_flat() { "flat".into() } else { "ivf".into() },
        elapsed_ms: t0.elapsed().as_millis() as u64,
        out: out.to_string(),
    };
    Ok(serde_json::to_string_pretty(&summary).expect("summary serialises"))
}

#[derive(Serialize)]
struct HitOut {
    id: usize,
    score: f32,
    title: String,
    year: u16,
}

#[derive(Serialize)]
struct QueryOut {
    paper: usize,
    hits: Vec<HitOut>,
}

#[derive(Serialize)]
struct QueryReport {
    results: Vec<QueryOut>,
    stats: sem_serve::StatsSnapshot,
}

fn describe(corpus: &Corpus, id: usize) -> (String, u16) {
    match corpus.papers.get(id) {
        Some(p) => (p.title.clone(), p.year),
        None => ("(ingested after index build)".into(), 0),
    }
}

/// `sem index query --model DIR --index index.json --paper ID[,ID...]
/// [--k K]`: answers one coalesced batch of top-K queries and reports the
/// engine counters.
fn index_query(args: &Args) -> Result<String, CliError> {
    let dir = PathBuf::from(args.required("model")?);
    let index_path = args.required("index")?;
    let k: usize = args.parse_num("k", 5)?;
    let papers: Vec<usize> = args
        .required("paper")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| CliError(format!("--paper: cannot parse {s:?}"))))
        .collect::<Result<_, _>>()?;
    let (corpus, pipeline, _labels, sem) = load_model(&dir)?;
    for &p in &papers {
        if p >= corpus.papers.len() {
            return Err(CliError(format!("--paper must be in 0..{}", corpus.papers.len())));
        }
    }
    let index = AnnIndex::from_json(&std::fs::read_to_string(index_path)?)?;
    let embedder = PaperEmbedder::new(&pipeline, &sem);
    if index.dim() != embedder.dim() {
        return Err(CliError(format!(
            "index width {} does not match the model's {}",
            index.dim(),
            embedder.dim()
        )));
    }
    let engine = QueryEngine::new(index, EngineConfig::default());
    let requests: Vec<QueryRequest> = papers
        .iter()
        .map(|&p| QueryRequest { vector: embedder.embed_indexed(&corpus, PaperId::from(p)), k })
        .collect();
    let batches = engine.query_batch(requests);
    let results = papers
        .iter()
        .zip(batches)
        .map(|(&p, hits)| QueryOut {
            paper: p,
            hits: hits
                .into_iter()
                .map(|h| {
                    let (title, year) = describe(&corpus, h.id);
                    HitOut { id: h.id, score: h.score, title, year }
                })
                .collect(),
        })
        .collect();
    let report = QueryReport { results, stats: engine.stats() };
    Ok(serde_json::to_string_pretty(&report).expect("report serialises"))
}

#[derive(Serialize)]
struct IngestReport {
    id: usize,
    title: String,
    sentences: usize,
    self_rank: usize,
    hits: Vec<HitOut>,
    index_len: usize,
    out: String,
}

/// Builds a [`Paper`] from raw title/abstract text. Gold sentence tags are
/// placeholders — serving only uses the CRF's *predicted* labels.
fn paper_from_text(title: &str, abstract_text: &str, year: u16, id: usize) -> Paper {
    let sentences: Vec<Sentence> = abstract_text
        .split('.')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| Sentence { text: s.to_string(), label: Subspace::Background })
        .collect();
    Paper {
        id: PaperId::from(id),
        title: title.to_string(),
        sentences,
        keywords: Vec::new(),
        references: Vec::new(),
        authors: Vec::new(),
        venue: None,
        year,
        discipline: 0,
        category: None,
        innovation: [0.0; NUM_SUBSPACES],
        citations_received: 0,
    }
}

/// `sem ingest --model DIR --index index.json --title T --abstract TEXT
/// [--year Y] [--k K] [--out index.json]`: embeds a brand-new zero-citation
/// paper, inserts it without rebuilding, saves the grown index and queries
/// the paper back.
pub(crate) fn ingest(args: &Args) -> Result<String, CliError> {
    let dir = PathBuf::from(args.required("model")?);
    let index_path = args.required("index")?;
    let title = args.required("title")?;
    let abstract_text = args.required("abstract")?;
    let k: usize = args.parse_num("k", 5)?;
    let out = args.get("out").unwrap_or(index_path).to_string();
    let (corpus, pipeline, _labels, sem) = load_model(&dir)?;
    let year: u16 =
        args.parse_num("year", corpus.papers.iter().map(|p| p.year).max().unwrap_or(2020) + 1)?;
    let index = AnnIndex::from_json(&std::fs::read_to_string(index_path)?)?;
    let embedder = PaperEmbedder::new(&pipeline, &sem);
    if index.dim() != embedder.dim() {
        return Err(CliError(format!(
            "index width {} does not match the model's {}",
            index.dim(),
            embedder.dim()
        )));
    }
    let paper = paper_from_text(title, abstract_text, year, index.len());
    if paper.sentences.is_empty() {
        return Err(CliError("--abstract has no sentences".into()));
    }
    let engine = QueryEngine::new(index, EngineConfig::default());
    let vector = embedder.embed_new(&paper);
    let id = engine.ingest_vector(vector.clone());
    let hits = engine.query(vector, k);
    let self_rank = hits.iter().position(|h| h.id == id).map(|r| r + 1).unwrap_or(0);
    let grown = engine.into_index();
    let index_len = grown.len();
    std::fs::write(Path::new(&out), grown.to_json())?;
    let report = IngestReport {
        id,
        title: title.to_string(),
        sentences: paper.sentences.len(),
        self_rank,
        hits: hits
            .into_iter()
            .map(|h| {
                let (t, y) =
                    if h.id == id { (title.to_string(), year) } else { describe(&corpus, h.id) };
                HitOut { id: h.id, score: h.score, title: t, year: y }
            })
            .collect(),
        index_len,
        out,
    };
    Ok(serde_json::to_string_pretty(&report).expect("report serialises"))
}

#[cfg(test)]
mod tests {
    use crate::commands::run;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sem-serve-cli-{name}-{}", std::process::id()))
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// The acceptance demo, end to end: generate → train → index build →
    /// batched query → ingest a brand-new paper → it comes back top-ranked.
    #[test]
    fn index_build_query_ingest_roundtrip() {
        let corpus_path = tmp("corpus.json");
        let model_dir = tmp("model");
        let index_path = tmp("index.json");
        run(&argv(&[
            "generate",
            "--preset",
            "acm",
            "--papers",
            "130",
            "--authors",
            "50",
            "--out",
            corpus_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "train",
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--out",
            model_dir.to_str().unwrap(),
            "--epochs",
            "1",
        ]))
        .unwrap();

        let built = run(&argv(&[
            "index",
            "build",
            "--model",
            model_dir.to_str().unwrap(),
            "--out",
            index_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(built.contains("\"papers\": 130"), "{built}");
        assert!(built.contains("\"mode\": \"flat\""), "{built}");

        // batched query: each paper's own vector must rank itself first
        let q = run(&argv(&[
            "index",
            "query",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--paper",
            "3,40",
            "--k",
            "4",
        ]))
        .unwrap();
        assert!(q.contains("\"paper\": 3"), "{q}");
        assert!(q.contains("\"id\": 3"), "{q}");
        assert!(q.contains("\"id\": 40"), "{q}");
        assert!(q.contains("\"largest_batch\": 2"), "{q}");

        let ing = run(&argv(&[
            "ingest",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--title",
            "A brand new subspace paper",
            "--abstract",
            "Prior work studies embeddings. We propose a novel subspace method. \
             Experiments show strong results.",
            "--k",
            "5",
        ]))
        .unwrap();
        assert!(ing.contains("\"id\": 130"), "{ing}");
        assert!(ing.contains("\"self_rank\": 1"), "{ing}");
        assert!(ing.contains("\"index_len\": 131"), "{ing}");

        // the grown index was persisted: querying it again still works and
        // now holds the ingested paper
        let q2 = run(&argv(&[
            "index",
            "query",
            "--model",
            model_dir.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--paper",
            "3",
            "--k",
            "4",
        ]))
        .unwrap();
        assert!(q2.contains("\"paper\": 3"), "{q2}");

        std::fs::remove_file(&corpus_path).ok();
        std::fs::remove_file(&index_path).ok();
        std::fs::remove_dir_all(&model_dir).ok();
    }

    #[test]
    fn serve_commands_reject_bad_input() {
        assert!(run(&argv(&["index"])).is_err());
        assert!(run(&argv(&["index", "frob"])).is_err());
        assert!(
            run(&argv(&["index", "build", "--model", "/nonexistent", "--out", "/tmp/x"])).is_err()
        );
        assert!(run(&argv(&["ingest", "--model", "/nonexistent"])).is_err());
    }
}
