//! # sem-cli
//!
//! The `sem` command-line tool: end-user workflows over the workspace
//! library — corpus generation and inspection, SEM training with on-disk
//! persistence, innovation analysis and paper recommendation.
//!
//! Commands (see `sem help`):
//!
//! ```text
//! sem generate  --preset acm|scopus|scopus3|pubmed|patent [--papers N] [--authors N] [--seed S] --out corpus.json
//! sem stats     --corpus corpus.json
//! sem train     --corpus corpus.json --out model-dir [--epochs N] [--workers N] [--checkpoint-dir DIR] [--checkpoint-every N] [--resume] [--progress]
//! sem embed     --model model-dir --paper ID
//! sem analyze   --corpus corpus.json [--lof-k K]
//! sem recommend --corpus corpus.json --split YEAR --user ID [--top N]
//! sem index build  --model model-dir --out index.snap [--nlist N] [--nprobe N]
//! sem index query  --model model-dir --index index.snap --paper ID[,ID...] [--k K] [--deadline-ms MS]
//! sem index verify --index index.snap
//! sem ingest       --model model-dir --index index.snap --title T --abstract TEXT [--year Y]
//! ```
//!
//! The serve family (`index build` / `index query` / `index verify` /
//! `ingest`) speaks JSON on stdout and is backed by the `sem-serve` crate:
//! an IVF-flat ANN index over SEM paper embeddings, a batched query engine
//! with an LRU result cache, and incremental zero-citation-paper ingestion.
//! Indexes live in crash-safe snapshots (checksummed header, atomic
//! rename) with a write-ahead journal alongside: `ingest` fsyncs the
//! journal before acknowledging, loading replays it, `index verify`
//! reports integrity, and `--deadline-ms` turns budget exhaustion into
//! partial results flagged `degraded` instead of blocking.
//!
//! Model persistence: the frozen text pipeline (skip-gram, encoder, CRF) is
//! deterministic given the corpus and seed, so a model directory stores only
//! the corpus reference, the SEM config and the trained weights; loading
//! re-derives the pipeline bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
mod metrics_cmd;
mod serve_cmds;

pub use commands::{run, CliError};
