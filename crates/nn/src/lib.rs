//! # sem-nn
//!
//! Neural-network building blocks over [`sem_tensor`]: a [`ParamStore`] that
//! owns model parameters, a per-step [`Session`] that binds parameters onto a
//! fresh autograd tape, layers ([`Linear`], [`Mlp`], [`Embedding`],
//! [`AttentionPool`]) and optimizers ([`Sgd`], [`Adam`]).
//!
//! Training loop shape:
//!
//! ```
//! use sem_nn::{ParamStore, Session, Linear, Sgd, Optimizer};
//! use sem_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let lin = Linear::new(&mut store, "lin", 4, 1, &mut rng);
//! let mut opt = Sgd::new(0.1);
//! for _ in 0..10 {
//!     let mut s = Session::new(&store);
//!     let x = s.tape.leaf(Tensor::matrix(2, 4, &[0.1; 8]));
//!     let y = lin.forward(&mut s, x);
//!     let loss = s.tape.bce_with_logits(y, Tensor::matrix(2, 1, &[1.0, 0.0]));
//!     s.tape.backward(loss);
//!     let grads = s.grads();
//!     opt.step(&mut store, &grads);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layers;
pub mod losses;
mod optim;
mod param;

pub use layers::{Activation, AttentionPool, Embedding, Linear, Mlp};
pub use optim::{Adam, AdamState, Optimizer, Sgd};
pub use param::{Gradients, ParamId, ParamStore, Session};
