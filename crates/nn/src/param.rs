//! Parameter storage and per-step tape binding.

use std::fmt;

use rayon::prelude::*;
use sem_tensor::{Shape, Tape, Tensor, TensorId};
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ParamId(pub(crate) usize);

struct Param {
    name: String,
    value: Tensor,
}

/// Owns all trainable parameters of a model.
///
/// Layers allocate their parameters here at construction time and keep only
/// [`ParamId`]s, so a whole model is `(ParamStore, layer structs)` and can be
/// saved/loaded or optimized generically.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter and returns its handle.
    ///
    /// # Panics
    /// Panics when `name` is already taken (names key serialization).
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(self.params.iter().all(|p| p.name != name), "duplicate parameter name {name:?}");
        self.params.push(Param { name, value });
        ParamId(self.params.len() - 1)
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Replaces a parameter's value (shape must match).
    pub fn set(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.params[id.0].value.shape(),
            value.shape(),
            "set() changes shape of {:?}",
            self.params[id.0].name
        );
        self.params[id.0].value = value;
    }

    /// Name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Squared L2 norm of all parameters — the regularization term `‖θ‖²`.
    pub fn sq_norm(&self) -> f32 {
        self.params.iter().map(|p| p.value.data().iter().map(|v| v * v).sum::<f32>()).sum()
    }

    /// Iterator over all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Serializes all parameters to JSON (name, shape, data).
    pub fn to_json(&self) -> String {
        let dump: Vec<ParamDump> = self
            .params
            .iter()
            .map(|p| ParamDump {
                name: p.name.clone(),
                rows: p.value.shape().rows(),
                cols: p.value.shape().cols(),
                rank: p.value.shape().rank() as u8,
                data: p.value.data().to_vec(),
            })
            .collect();
        serde_json::to_string(&dump).expect("param serialization cannot fail")
    }

    /// Restores a store serialized with [`ParamStore::to_json`].
    ///
    /// # Errors
    /// Returns an error string when the JSON is malformed or shapes are
    /// inconsistent with their data.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let dump: Vec<ParamDump> = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let mut store = ParamStore::new();
        for d in dump {
            let shape = match d.rank {
                0 => Shape::Scalar,
                1 => Shape::Vector(d.cols),
                2 => Shape::Matrix(d.rows, d.cols),
                r => return Err(format!("bad rank {r}")),
            };
            if shape.len() != d.data.len() {
                return Err(format!("shape/data mismatch for {}", d.name));
            }
            store.add(d.name, Tensor::from_vec(d.data, shape));
        }
        Ok(store)
    }

    /// Name of the first parameter holding a NaN or ±Inf value, if any.
    ///
    /// The training watchdog scans with this after every optimizer step;
    /// returning the *name* (not just a flag) lets recovery events say
    /// which tensor blew up.
    pub fn first_non_finite(&self) -> Option<&str> {
        self.params
            .iter()
            .find(|p| p.value.data().iter().any(|v| !v.is_finite()))
            .map(|p| p.name.as_str())
    }

    /// True when every scalar weight is finite (no NaN/Inf anywhere).
    pub fn all_finite(&self) -> bool {
        self.first_non_finite().is_none()
    }

    /// Like [`ParamStore::first_non_finite`], restricted to parameters the
    /// given gradients touch. After an optimizer step only those can have
    /// changed, so this is the cheap per-step scan — cost proportional to
    /// the step's update, not the whole model.
    pub fn first_non_finite_updated(&self, grads: &Gradients) -> Option<&str> {
        self.params
            .iter()
            .zip(&grads.by_param)
            .filter(|(_, g)| g.is_some())
            .find(|(p, _)| p.value.data().iter().any(|v| !v.is_finite()))
            .map(|(p, _)| p.name.as_str())
    }

    /// Raw copy of every parameter's values, in registration order.
    ///
    /// Much cheaper than a JSON round-trip; pairs with
    /// [`ParamStore::restore_values`] for in-memory rollback points.
    pub fn snapshot_values(&self) -> Vec<Vec<f32>> {
        self.params.iter().map(|p| p.value.data().to_vec()).collect()
    }

    /// Restores values captured by [`ParamStore::snapshot_values`] from the
    /// same store (shapes are kept; only the numbers change).
    ///
    /// # Panics
    /// Panics when `values` does not match the store's parameter count or
    /// any per-parameter length — snapshots are only valid for the store
    /// that produced them.
    pub fn restore_values(&mut self, values: &[Vec<f32>]) {
        assert_eq!(values.len(), self.params.len(), "snapshot/store parameter count mismatch");
        for (p, vals) in self.params.iter_mut().zip(values) {
            assert_eq!(vals.len(), p.value.len(), "snapshot length mismatch for {:?}", p.name);
            p.value = Tensor::from_vec(vals.clone(), p.value.shape());
        }
    }

    /// Copies every parameter value from `other` into this store, matching
    /// by position and requiring identical names and shapes — the two
    /// stores must describe the same architecture. Used to restore trained
    /// or checkpointed weights into a freshly constructed model.
    ///
    /// # Errors
    /// Returns an error string (leaving `self` partially updated) when the
    /// parameter counts, names or shapes disagree.
    pub fn copy_from(&mut self, other: &ParamStore) -> Result<(), String> {
        if other.len() != self.len() {
            return Err(format!("expected {} params, got {}", self.len(), other.len()));
        }
        for (id, oid) in self.ids().zip(other.ids()).collect::<Vec<_>>() {
            if self.name(id) != other.name(oid) {
                return Err(format!(
                    "param {} name mismatch: {:?} vs {:?}",
                    id.0,
                    self.name(id),
                    other.name(oid)
                ));
            }
            if self.get(id).shape() != other.get(oid).shape() {
                return Err(format!("param {:?} shape mismatch", self.name(id)));
            }
            self.set(id, other.get(oid).clone());
        }
        Ok(())
    }
}

impl fmt::Debug for ParamStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ParamStore({} params, {} weights)", self.len(), self.num_weights())
    }
}

#[derive(Serialize, Deserialize)]
struct ParamDump {
    name: String,
    rank: u8,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Gradients for a [`ParamStore`], produced by [`Session::grads`].
///
/// Parameters that did not participate in the forward pass have no entry and
/// are skipped by optimizers — exactly the sparse-update behaviour embedding
/// tables want.
pub struct Gradients {
    pub(crate) by_param: Vec<Option<Tensor>>,
}

impl Gradients {
    /// An empty accumulator for [`Gradients::add_assign`].
    pub fn empty() -> Self {
        Gradients { by_param: Vec::new() }
    }

    /// Accumulates `other` into `self` elementwise.
    ///
    /// The caller controls the order of accumulation; summing worker
    /// gradients in a fixed order is what makes data-parallel training
    /// bit-deterministic regardless of worker count.
    ///
    /// # Panics
    /// Panics when the same parameter carries differently-shaped gradients
    /// in `self` and `other`.
    pub fn add_assign(&mut self, other: &Gradients) {
        if self.by_param.len() < other.by_param.len() {
            self.by_param.resize_with(other.by_param.len(), || None);
        }
        for (slot, o) in self.by_param.iter_mut().zip(&other.by_param) {
            let Some(o) = o else { continue };
            match slot {
                Some(g) => {
                    assert_eq!(g.shape(), o.shape(), "gradient shape mismatch in add_assign");
                    let sum: Vec<f32> = g.data().iter().zip(o.data()).map(|(a, b)| a + b).collect();
                    *g = Tensor::from_vec(sum, g.shape());
                }
                None => *slot = Some(o.clone()),
            }
        }
    }

    /// Sums `parts` into one accumulator, element-parallel across `lanes`.
    ///
    /// Bit-identical to folding [`Gradients::add_assign`] over `parts` in
    /// the same order: every output element is the same left-to-right sum
    /// over the contributing parts, merely computed on different lanes.
    /// This removes the serial reduction from the data-parallel training
    /// step — with big embedding-table gradients the O(parts × weights)
    /// single-threaded fold is what kept N workers at 1-worker throughput.
    /// `lanes <= 1` (or a single part) takes the serial reference path.
    ///
    /// # Panics
    /// Panics when the same parameter carries differently-shaped gradients
    /// across `parts`.
    pub fn reduce_ordered<'a, I>(parts: I, lanes: usize) -> Gradients
    where
        I: IntoIterator<Item = &'a Gradients>,
    {
        let parts: Vec<&Gradients> = parts.into_iter().collect();
        if lanes <= 1 || parts.len() <= 1 {
            let mut acc = Gradients::empty();
            for p in parts {
                acc.add_assign(p);
            }
            return acc;
        }
        let n_params = parts.iter().map(|p| p.by_param.len()).max().unwrap_or(0);
        let by_param: Vec<Option<Tensor>> = (0..n_params)
            .map(|i| {
                let contributors: Vec<&Tensor> = parts
                    .iter()
                    .filter_map(|p| p.by_param.get(i).and_then(Option::as_ref))
                    .collect();
                let first = contributors.first()?;
                for c in &contributors {
                    assert_eq!(
                        c.shape(),
                        first.shape(),
                        "gradient shape mismatch in reduce_ordered"
                    );
                }
                // seed with the first contributor (not zeros: 0.0 + -0.0
                // would flip signed zeros the serial fold preserves), then
                // left-fold the rest per element, chunk-parallel
                let len = first.data().len();
                let chunk = len.div_ceil(lanes).max(1);
                let pieces: Vec<Vec<f32>> = (0..len.div_ceil(chunk))
                    .into_par_iter()
                    .map(|ci| {
                        let base = ci * chunk;
                        let end = (base + chunk).min(len);
                        let mut out = first.data()[base..end].to_vec();
                        for c in &contributors[1..] {
                            for (o, x) in out.iter_mut().zip(&c.data()[base..end]) {
                                *o += x;
                            }
                        }
                        out
                    })
                    .collect();
                Some(Tensor::from_vec(pieces.concat(), first.shape()))
            })
            .collect();
        Gradients { by_param }
    }

    /// Gradient for one parameter, if it flowed.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.get(id.0).and_then(|g| g.as_ref())
    }

    /// True when every gradient value is finite (no NaN/Inf anywhere).
    ///
    /// Stricter than checking `norm().is_finite()`: large-but-finite
    /// gradients can overflow the squared norm to Inf while every value
    /// here still reads as finite.
    pub fn all_finite(&self) -> bool {
        self.by_param.iter().flatten().all(|g| g.data().iter().all(|v| v.is_finite()))
    }

    /// Multiplies every gradient value by `factor` in place. Used by
    /// deterministic fault injection to manufacture gradient spikes.
    pub fn scale(&mut self, factor: f32) {
        for g in self.by_param.iter_mut().flatten() {
            let scaled: Vec<f32> = g.data().iter().map(|v| v * factor).collect();
            *g = Tensor::from_vec(scaled, g.shape());
        }
    }

    /// Global L2 norm over all gradients (used for clipping diagnostics).
    pub fn norm(&self) -> f32 {
        self.by_param
            .iter()
            .flatten()
            .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

/// One forward/backward pass: a fresh tape plus lazy parameter binding.
///
/// `Session::param` records a parameter as a tape leaf the first time it is
/// requested and reuses the same node afterwards, so gradient contributions
/// from every use of a shared parameter accumulate correctly.
pub struct Session<'a> {
    /// The autograd tape for this step. Record model ops directly on it.
    pub tape: Tape,
    store: &'a ParamStore,
    bound: Vec<Option<TensorId>>,
}

impl<'a> Session<'a> {
    /// Starts a session over the store's current values.
    pub fn new(store: &'a ParamStore) -> Self {
        Session::with_tape(store, Tape::new())
    }

    /// Starts a session that continues recording on an existing tape —
    /// useful when composing with code (like gradient checking) that owns
    /// the tape.
    pub fn with_tape(store: &'a ParamStore, tape: Tape) -> Self {
        Session { tape, store, bound: vec![None; store.len()] }
    }

    /// Consumes the session, returning its tape.
    pub fn into_tape(self) -> Tape {
        self.tape
    }

    /// The tape node holding this parameter's value.
    pub fn param(&mut self, id: ParamId) -> TensorId {
        if let Some(t) = self.bound[id.0] {
            return t;
        }
        let t = self.tape.leaf(self.store.get(id).clone());
        self.bound[id.0] = Some(t);
        t
    }

    /// L2 regularization term `λ·Σ‖θᵢ‖²` over the given parameters, as a
    /// scalar tape node.
    pub fn l2_penalty(&mut self, ids: &[ParamId], lambda: f32) -> TensorId {
        let mut acc: Option<TensorId> = None;
        for &id in ids {
            let p = self.param(id);
            let sq = self.tape.sq_norm(p);
            acc = Some(match acc {
                Some(a) => self.tape.add(a, sq),
                None => sq,
            });
        }
        let total = acc.unwrap_or_else(|| self.tape.leaf(Tensor::scalar(0.0)));
        self.tape.scale(total, lambda)
    }

    /// Collects parameter gradients after `tape.backward(loss)`.
    pub fn grads(&self) -> Gradients {
        let by_param =
            self.bound.iter().map(|slot| slot.and_then(|tid| self.tape.grad(tid))).collect();
        Gradients { by_param }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_set_roundtrip() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::vector(&[1.0, 2.0]));
        assert_eq!(s.get(id).data(), &[1.0, 2.0]);
        assert_eq!(s.name(id), "w");
        s.set(id, Tensor::vector(&[3.0, 4.0]));
        assert_eq!(s.get(id).data(), &[3.0, 4.0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_weights(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::scalar(1.0));
        s.add("w", Tensor::scalar(2.0));
    }

    #[test]
    #[should_panic(expected = "changes shape")]
    fn set_shape_mismatch_panics() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::vector(&[1.0, 2.0]));
        s.set(id, Tensor::scalar(0.0));
    }

    #[test]
    fn session_binds_param_once() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(2.0));
        let mut sess = Session::new(&store);
        let a = sess.param(id);
        let b = sess.param(id);
        assert_eq!(a, b);
        // loss = w * w; dw = 2w = 4
        let loss = sess.tape.mul(a, b);
        sess.tape.backward(loss);
        let g = sess.grads();
        assert_eq!(g.get(id).unwrap().item(), 4.0);
    }

    #[test]
    fn unused_param_has_no_grad() {
        let mut store = ParamStore::new();
        let used = store.add("a", Tensor::scalar(3.0));
        let unused = store.add("b", Tensor::scalar(5.0));
        let mut sess = Session::new(&store);
        let a = sess.param(used);
        let loss = sess.tape.mul(a, a);
        sess.tape.backward(loss);
        let g = sess.grads();
        assert!(g.get(used).is_some());
        assert!(g.get(unused).is_none());
    }

    #[test]
    fn l2_penalty_matches_manual() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::vector(&[1.0, 2.0]));
        let b = store.add("b", Tensor::vector(&[3.0]));
        let mut sess = Session::new(&store);
        let pen = sess.l2_penalty(&[a, b], 0.5);
        assert!((sess.tape.value(pen).item() - 0.5 * (1.0 + 4.0 + 9.0)).abs() < 1e-6);
        assert!((store.sq_norm() - 14.0).abs() < 1e-6);
    }

    #[test]
    fn json_roundtrip() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::matrix(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        s.add("b", Tensor::vector(&[0.5]));
        s.add("c", Tensor::scalar(9.0));
        let json = s.to_json();
        let r = ParamStore::from_json(&json).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(ParamId(0)).data(), s.get(ParamId(0)).data());
        assert_eq!(r.get(ParamId(0)).shape(), s.get(ParamId(0)).shape());
        assert_eq!(r.get(ParamId(2)).item(), 9.0);
        assert_eq!(r.name(ParamId(1)), "b");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ParamStore::from_json("not json").is_err());
    }

    #[test]
    fn add_assign_sums_and_fills_missing() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::vector(&[1.0, 1.0]));
        let b = store.add("b", Tensor::scalar(0.0));
        let grads_for = |wa: f32, use_b: bool| {
            let mut s = Session::new(&store);
            let pa = s.param(a);
            let scaled = s.tape.scale(pa, wa);
            let mut loss = s.tape.sum(scaled);
            if use_b {
                let pb = s.param(b);
                loss = s.tape.add(loss, pb);
            }
            s.tape.backward(loss);
            s.grads()
        };
        let mut acc = Gradients::empty();
        acc.add_assign(&grads_for(2.0, false));
        acc.add_assign(&grads_for(3.0, true));
        assert_eq!(acc.get(a).unwrap().data(), &[5.0, 5.0]);
        assert_eq!(acc.get(b).unwrap().item(), 1.0);
    }

    #[test]
    fn reduce_ordered_is_bit_identical_to_the_serial_fold() {
        // sparse parts (some parameters missing from some parts), awkward
        // values (signed zeros, subnormals, catastrophic cancellation) and
        // a length that does not divide evenly across lanes
        let mk = |vals: Vec<f32>, with_b: bool| Gradients {
            by_param: vec![Some(Tensor::vector(&vals)), with_b.then(|| Tensor::scalar(0.25))],
        };
        let base: Vec<f32> = (0..37)
            .map(|i| match i % 5 {
                0 => -0.0,
                1 => 1e30,
                2 => -1e30,
                3 => 1e-40,
                _ => 0.1 * i as f32,
            })
            .collect();
        let parts: Vec<Gradients> = (0..7)
            .map(|p| mk(base.iter().map(|v| v * (p as f32 - 3.0)).collect(), p % 2 == 0))
            .collect();
        let mut serial = Gradients::empty();
        for p in &parts {
            serial.add_assign(p);
        }
        for lanes in [1usize, 2, 4, 8] {
            let parallel = Gradients::reduce_ordered(parts.iter(), lanes);
            for i in 0..2 {
                let s = serial.by_param[i].as_ref().map(|t| t.data().to_vec());
                let q = parallel.by_param[i].as_ref().map(|t| t.data().to_vec());
                // bit-level comparison: NaN-safe, signed-zero-exact
                let bits = |v: Option<Vec<f32>>| {
                    v.map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>())
                };
                assert_eq!(bits(s), bits(q), "lanes={lanes} param={i}");
            }
        }
    }

    #[test]
    fn finite_scans_catch_nan_and_inf() {
        let mut s = ParamStore::new();
        s.add("ok", Tensor::vector(&[1.0, -2.0]));
        let bad = s.add("bad", Tensor::vector(&[0.0, 0.0]));
        assert!(s.all_finite());
        assert_eq!(s.first_non_finite(), None);
        s.set(bad, Tensor::vector(&[0.0, f32::NAN]));
        assert!(!s.all_finite());
        assert_eq!(s.first_non_finite(), Some("bad"));
        s.set(bad, Tensor::vector(&[f32::INFINITY, 0.0]));
        assert_eq!(s.first_non_finite(), Some("bad"));
    }

    #[test]
    fn updated_scan_only_sees_touched_params() {
        use crate::Session;
        let mut s = ParamStore::new();
        let ok = s.add("ok", Tensor::vector(&[1.0, -2.0]));
        let bad = s.add("bad", Tensor::vector(&[0.0, 0.0]));
        let (touch_ok, touch_bad) = {
            let grads_touching = |id: ParamId| {
                let mut sess = Session::new(&s);
                let w = sess.param(id);
                let loss = sess.tape.sum(w);
                sess.tape.backward(loss);
                sess.grads()
            };
            (grads_touching(ok), grads_touching(bad))
        };
        s.set(bad, Tensor::vector(&[0.0, f32::NAN]));
        // Gradients touching only the healthy param: the poisoned one is
        // out of scope for the per-step scan.
        assert_eq!(s.first_non_finite_updated(&touch_ok), None);
        assert_eq!(s.first_non_finite_updated(&touch_bad), Some("bad"));
        // The full scan still catches it regardless.
        assert_eq!(s.first_non_finite(), Some("bad"));
    }

    #[test]
    fn snapshot_restore_roundtrips_values() {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::matrix(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        let b = s.add("b", Tensor::scalar(0.5));
        let snap = s.snapshot_values();
        s.set(w, Tensor::matrix(2, 2, &[9.0, 9.0, 9.0, 9.0]));
        s.set(b, Tensor::scalar(-1.0));
        s.restore_values(&snap);
        assert_eq!(s.get(w).data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.get(b).item(), 0.5);
        assert_eq!(s.get(w).shape(), Shape::Matrix(2, 2));
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn restore_rejects_foreign_snapshot() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::scalar(1.0));
        s.restore_values(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    fn gradient_finite_scan_and_scale() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::vector(&[2.0, 2.0]));
        let mut g = {
            let mut s = Session::new(&store);
            let w = s.param(a);
            let loss = s.tape.sum(w);
            s.tape.backward(loss);
            s.grads()
        };
        assert!(g.all_finite());
        g.scale(3.0);
        assert_eq!(g.get(a).unwrap().data(), &[3.0, 3.0]);
        g.scale(f32::NAN);
        assert!(!g.all_finite());
    }

    #[test]
    fn copy_from_roundtrips_values() {
        let mut src = ParamStore::new();
        src.add("w", Tensor::vector(&[1.5, -2.5]));
        src.add("b", Tensor::scalar(7.0));
        let mut dst = ParamStore::new();
        dst.add("w", Tensor::vector(&[0.0, 0.0]));
        let id_b = dst.add("b", Tensor::scalar(0.0));
        dst.copy_from(&src).unwrap();
        assert_eq!(dst.get(ParamId(0)).data(), &[1.5, -2.5]);
        assert_eq!(dst.get(id_b).item(), 7.0);
    }

    #[test]
    fn copy_from_rejects_mismatched_architecture() {
        let mut src = ParamStore::new();
        src.add("w", Tensor::scalar(1.0));
        let mut wrong_count = ParamStore::new();
        wrong_count.add("w", Tensor::scalar(0.0));
        wrong_count.add("extra", Tensor::scalar(0.0));
        assert!(wrong_count.copy_from(&src).is_err());
        let mut wrong_name = ParamStore::new();
        wrong_name.add("v", Tensor::scalar(0.0));
        assert!(wrong_name.copy_from(&src).is_err());
        let mut wrong_shape = ParamStore::new();
        wrong_shape.add("w", Tensor::vector(&[0.0, 0.0]));
        assert!(wrong_shape.copy_from(&src).is_err());
    }
}
