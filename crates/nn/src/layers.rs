//! Layers: linear, MLP, embedding table, global attention pooling.

use rand::Rng;
use sem_tensor::{Shape, Tensor, TensorId};

use crate::param::{ParamId, ParamStore, Session};

/// Pointwise non-linearity applied between layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent (the paper's MLP uses `tanh`, Eq. 7–8).
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid (the paper's GCN σ, Eq. 17–21).
    Sigmoid,
    /// No non-linearity.
    Identity,
}

impl Activation {
    /// Applies the activation to a tape node.
    pub fn apply(self, s: &mut Session<'_>, x: TensorId) -> TensorId {
        match self {
            Activation::Tanh => s.tape.tanh(x),
            Activation::Relu => s.tape.relu(x),
            Activation::Sigmoid => s.tape.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// A dense affine layer `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Allocates a Glorot-initialised layer in `store` under `name`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add(format!("{name}.w"), Tensor::glorot(in_dim, out_dim, rng));
        let b = store.add(format!("{name}.b"), Tensor::zeros(Shape::Vector(out_dim)));
        Linear { w, b, in_dim, out_dim }
    }

    /// Applies the layer to `[n, in_dim]` (or `[in_dim]`) input.
    pub fn forward(&self, s: &mut Session<'_>, x: TensorId) -> TensorId {
        debug_assert_eq!(s.tape.value(x).shape().cols(), self.in_dim, "Linear input dim");
        let w = s.param(self.w);
        let b = s.param(self.b);
        let xw = s.tape.matmul(x, w);
        s.tape.add_row_broadcast(xw, b)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter handles (weight, bias) — e.g. for L2 penalties.
    pub fn params(&self) -> [ParamId; 2] {
        [self.w, self.b]
    }
}

/// Multi-layer perceptron: a stack of [`Linear`] layers with a shared
/// activation between them (Eq. 7–8 of the paper), identity on the output
/// unless `activate_last`.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    activate_last: bool,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[64, 32, 16]` makes
    /// two layers `64→32→16`.
    ///
    /// # Panics
    /// Panics when fewer than two widths are given.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        widths: &[usize],
        activation: Activation,
        activate_last: bool,
        rng: &mut R,
    ) -> Self {
        assert!(widths.len() >= 2, "MLP needs at least input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers, activation, activate_last }
    }

    /// Applies the stack.
    pub fn forward(&self, s: &mut Session<'_>, x: TensorId) -> TensorId {
        let last = self.layers.len() - 1;
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(s, h);
            if i < last || self.activate_last {
                h = self.activation.apply(s, h);
            }
        }
        h
    }

    /// All parameter handles.
    pub fn params(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }
}

/// A trainable embedding table `[vocab, dim]` with sparse-gradient lookup.
#[derive(Clone, Debug)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Allocates a table with uniform `±0.5/dim` initialisation.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let limit = 0.5 / dim as f32;
        let table = store.add(name, Tensor::uniform(Shape::Matrix(vocab, dim), limit, rng));
        Embedding { table, vocab, dim }
    }

    /// Looks up rows for `indices`, returning `[len, dim]`.
    ///
    /// # Panics
    /// Panics when an index is out of vocabulary (via the gather kernel).
    pub fn lookup(&self, s: &mut Session<'_>, indices: &[usize]) -> TensorId {
        let t = s.param(self.table);
        s.tape.gather_rows(t, indices.to_vec())
    }

    /// The raw table parameter.
    pub fn param(&self) -> ParamId {
        self.table
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Global attention pooling (the paper's Eq. 9 head): rows of `[n, d]` are
/// scored by `score_i = u · tanh(W h_i + b)`, softmax-normalised, and the
/// output is the attention-weighted sum `[d]`.
#[derive(Clone, Debug)]
pub struct AttentionPool {
    w: ParamId,
    b: ParamId,
    u: ParamId,
    dim: usize,
    attn_dim: usize,
}

impl AttentionPool {
    /// Allocates the pooling head: `W [d, a]`, `b [a]`, `u [a]`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        attn_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add(format!("{name}.w"), Tensor::glorot(dim, attn_dim, rng));
        let b = store.add(format!("{name}.b"), Tensor::zeros(Shape::Vector(attn_dim)));
        let u = store.add(
            format!("{name}.u"),
            Tensor::glorot(attn_dim, 1, rng).reshape(Shape::Vector(attn_dim)),
        );
        AttentionPool { w, b, u, dim, attn_dim }
    }

    /// Pools `[n, d] → [d]`.
    pub fn forward(&self, s: &mut Session<'_>, x: TensorId) -> TensorId {
        debug_assert_eq!(s.tape.value(x).shape().cols(), self.dim, "AttentionPool input dim");
        let w = s.param(self.w);
        let b = s.param(self.b);
        let u = s.param(self.u);
        let xw = s.tape.matmul(x, w); // [n, a]
        let h = s.tape.add_row_broadcast(xw, b);
        let t = s.tape.tanh(h);
        let u_col = s.tape.reshape(u, Shape::Matrix(self.attn_dim, 1));
        let scores = s.tape.matmul(t, u_col); // [n, 1]
        let n = s.tape.value(scores).len();
        let scores_row = s.tape.reshape(scores, Shape::Matrix(1, n));
        let alpha = s.tape.row_softmax(scores_row); // [1, n]
        let pooled = s.tape.matmul(alpha, x); // [1, d]
        s.tape.reshape(pooled, Shape::Vector(self.dim))
    }

    /// All parameter handles.
    pub fn params(&self) -> [ParamId; 3] {
        [self.w, self.b, self.u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sem_tensor::grad_check;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng());
        let mut s = Session::new(&store);
        let x = s.tape.leaf(Tensor::matrix(4, 3, &[0.1; 12]));
        let y = lin.forward(&mut s, x);
        assert_eq!(s.tape.value(y).shape(), Shape::Matrix(4, 2));
        assert_eq!(lin.in_dim(), 3);
        assert_eq!(lin.out_dim(), 2);
    }

    #[test]
    fn mlp_stacks_and_activates() {
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[4, 8, 2], Activation::Tanh, true, &mut rng());
        assert_eq!(store.len(), 4); // 2 layers × (w, b)
        assert_eq!(mlp.out_dim(), 2);
        let mut s = Session::new(&store);
        let x = s.tape.leaf(Tensor::matrix(3, 4, &[0.5; 12]));
        let y = mlp.forward(&mut s, x);
        let out = s.tape.value(y);
        assert_eq!(out.shape(), Shape::Matrix(3, 2));
        // activate_last=true with tanh keeps outputs in (-1, 1)
        assert!(out.data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_needs_two_widths() {
        let mut store = ParamStore::new();
        let _ = Mlp::new(&mut store, "m", &[4], Activation::Tanh, false, &mut rng());
    }

    #[test]
    fn embedding_lookup_shape_and_grad_sparsity() {
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng());
        let mut s = Session::new(&store);
        let x = emb.lookup(&mut s, &[3, 3, 7]);
        assert_eq!(s.tape.value(x).shape(), Shape::Matrix(3, 4));
        let loss = s.tape.sum(x);
        s.tape.backward(loss);
        let g = s.grads().get(emb.param()).unwrap().clone();
        // rows 3 (twice) and 7 get gradient, everything else zero
        assert!(g.row(3).iter().all(|&v| (v - 2.0).abs() < 1e-6));
        assert!(g.row(7).iter().all(|&v| (v - 1.0).abs() < 1e-6));
        assert!(g.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn attention_pool_is_convex_combination() {
        let mut store = ParamStore::new();
        let pool = AttentionPool::new(&mut store, "a", 3, 5, &mut rng());
        let mut s = Session::new(&store);
        // all rows identical -> pooled must equal that row regardless of weights
        let x = s.tape.leaf(Tensor::matrix(4, 3, &[0.2, -0.4, 0.9].repeat(4)));
        let y = pool.forward(&mut s, x);
        let out = s.tape.value(y);
        assert_eq!(out.shape(), Shape::Vector(3));
        assert!((out.data()[0] - 0.2).abs() < 1e-5);
        assert!((out.data()[1] + 0.4).abs() < 1e-5);
        assert!((out.data()[2] - 0.9).abs() < 1e-5);
    }

    #[test]
    fn attention_pool_grad_check() {
        let mut store = ParamStore::new();
        let pool = AttentionPool::new(&mut store, "a", 3, 4, &mut rng());
        let mut r = rng();
        let x = Tensor::uniform(Shape::Matrix(5, 3), 0.8, &mut r);
        // Check gradient w.r.t. the input by treating params as constants.
        let report = grad_check::check(&[x], 1e-2, |tape, ids| {
            let mut s2 = Session::with_tape(&store, std::mem::take(tape));
            let y = pool.forward(&mut s2, ids[0]);
            let out = s2.tape.sum(y);
            *tape = s2.into_tape();
            out
        });
        assert!(report.within(1e-2), "{report:?}");
    }

    #[test]
    fn linear_training_reduces_loss() {
        // tiny regression: learn y = x1 + x2 with BCE-free plain L2 via tape ops
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 2, 1, &mut rng());
        let mut opt = crate::optim::Sgd::new(0.2);
        use crate::optim::Optimizer;
        let xs = Tensor::matrix(4, 2, &[0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let ys = Tensor::matrix(4, 1, &[0.0, 1.0, 1.0, 2.0]);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let mut s = Session::new(&store);
            let x = s.tape.leaf(xs.clone());
            let t = s.tape.leaf(ys.clone());
            let y = lin.forward(&mut s, x);
            let d = s.tape.sub(y, t);
            let sq = s.tape.mul(d, d);
            let loss = s.tape.mean(sq);
            last = s.tape.value(loss).item();
            first.get_or_insert(last);
            s.tape.backward(loss);
            let g = s.grads();
            opt.step(&mut store, &g);
        }
        assert!(last < first.unwrap() * 0.01, "loss {first:?} -> {last}");
    }
}
