//! Gradient-descent optimizers.

use sem_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::param::{Gradients, ParamStore};

/// A first-order optimizer that applies [`Gradients`] to a [`ParamStore`].
///
/// Parameters without a gradient entry are left untouched (sparse updates).
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients);
}

/// Plain stochastic gradient descent with optional decoupled weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Decoupled weight decay coefficient (0 disables).
    pub weight_decay: f32,
    /// Gradient-norm clip threshold (0 disables).
    pub clip: f32,
}

impl Sgd {
    /// SGD with the given learning rate, no decay, no clipping.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, weight_decay: 0.0, clip: 0.0 }
    }

    /// Sets decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets global gradient-norm clipping.
    pub fn with_clip(mut self, clip: f32) -> Self {
        self.clip = clip;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        let scale = clip_scale(grads, self.clip);
        for id in store.ids() {
            let Some(g) = grads.get(id) else { continue };
            let p = store.get(id);
            let mut out = Vec::with_capacity(p.len());
            for (w, gr) in p.data().iter().zip(g.data()) {
                let decayed = w * (1.0 - self.lr * self.weight_decay);
                out.push(decayed - self.lr * gr * scale);
            }
            store.set(id, Tensor::from_vec(out, p.shape()));
        }
    }
}

/// Adam (Kingma & Ba) with bias correction and optional clipping.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Gradient-norm clip threshold (0 disables).
    pub clip: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets global gradient-norm clipping.
    pub fn with_clip(mut self, clip: f32) -> Self {
        self.clip = clip;
        self
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        while self.m.len() < store.len() {
            let i = self.m.len();
            let n = store.get(crate::param::ParamId(i)).len();
            self.m.push(vec![0.0; n]);
            self.v.push(vec![0.0; n]);
        }
    }

    /// Snapshot of the optimizer's mutable state for checkpointing.
    pub fn state(&self) -> AdamState {
        AdamState { t: self.t, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restores a state captured with [`Adam::state`], resuming the step
    /// count and moment estimates exactly.
    pub fn restore(&mut self, state: AdamState) {
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }
}

/// Serializable Adam state — step count plus first/second moment estimates,
/// one vector per parameter in [`ParamStore`] registration order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AdamState {
    /// Number of optimizer steps taken so far.
    pub t: u64,
    /// First-moment (mean) estimates.
    pub m: Vec<Vec<f32>>,
    /// Second-moment (uncentered variance) estimates.
    pub v: Vec<Vec<f32>>,
}

impl AdamState {
    /// True when every moment estimate is finite. Checkpoint validation
    /// rejects states that fail this rather than resuming from garbage.
    pub fn all_finite(&self) -> bool {
        self.m.iter().chain(self.v.iter()).all(|vs| vs.iter().all(|x| x.is_finite()))
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.ensure_state(store);
        self.t += 1;
        let scale = clip_scale(grads, self.clip);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for id in store.ids() {
            let Some(g) = grads.get(id) else { continue };
            let p = store.get(id);
            let m = &mut self.m[id.0];
            let v = &mut self.v[id.0];
            let mut out = Vec::with_capacity(p.len());
            for ((w, gr), (mi, vi)) in
                p.data().iter().zip(g.data()).zip(m.iter_mut().zip(v.iter_mut()))
            {
                let gr = gr * scale;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gr;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gr * gr;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                out.push(w - self.lr * mhat / (vhat.sqrt() + self.eps));
            }
            store.set(id, Tensor::from_vec(out, p.shape()));
        }
    }
}

fn clip_scale(grads: &Gradients, clip: f32) -> f32 {
    if clip <= 0.0 {
        return 1.0;
    }
    let norm = grads.norm();
    if norm > clip {
        clip / norm
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamStore, Session};
    use sem_tensor::Tensor;

    fn quadratic_step(store: &mut ParamStore, opt: &mut dyn Optimizer) -> f32 {
        // loss = (w - 3)^2, minimised at w = 3
        let id = store.ids().next().unwrap();
        let mut s = Session::new(store);
        let w = s.param(id);
        let c = s.tape.leaf(Tensor::scalar(3.0));
        let d = s.tape.sub(w, c);
        let loss = s.tape.mul(d, d);
        let out = s.tape.value(loss).item();
        s.tape.backward(loss);
        let g = s.grads();
        opt.step(store, &g);
        out
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(0.1);
        let mut last = f32::MAX;
        for _ in 0..100 {
            last = quadratic_step(&mut store, &mut opt);
        }
        assert!(last < 1e-6, "loss {last}");
        let id = store.ids().next().unwrap();
        assert!((store.get(id).item() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(-5.0));
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            quadratic_step(&mut store, &mut opt);
        }
        let id = store.ids().next().unwrap();
        assert!((store.get(id).item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_unused_direction() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::vector(&[10.0, 10.0]));
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        // gradient only on the first coordinate
        let g = {
            let mut s = Session::new(&store);
            let w = s.param(id);
            let mask = s.tape.mul_const(w, Tensor::vector(&[1.0, 0.0]));
            let loss = s.tape.sum(mask);
            s.tape.backward(loss);
            s.grads()
        };
        opt.step(&mut store, &g);
        let w = store.get(id);
        // both coordinates decayed, first also moved by -lr * 1
        assert!((w.data()[1] - 9.5).abs() < 1e-5);
        assert!((w.data()[0] - (9.5 - 0.1)).abs() < 1e-5);
    }

    #[test]
    fn clip_limits_update_magnitude() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(1.0).with_clip(1.0);
        let g = {
            let mut s = Session::new(&store);
            let w = s.param(id);
            let big = s.tape.scale(w, 1.0);
            let c = s.tape.leaf(Tensor::scalar(-100.0));
            let d = s.tape.sub(big, c); // w + 100
            let loss = s.tape.mul(d, d); // grad = 2(w+100) = 200
            s.tape.backward(loss);
            s.grads()
        };
        assert!(g.norm() > 100.0);
        opt.step(&mut store, &g);
        // clipped gradient has norm 1, lr 1 -> |w| == 1
        assert!((store.get(id).item().abs() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn adam_state_roundtrip_matches_uninterrupted_run() {
        // Two optimizers walk the same quadratic; one is snapshotted and
        // restored into a fresh Adam mid-run. Trajectories must match bitwise.
        let mut store_a = ParamStore::new();
        store_a.add("w", Tensor::scalar(-5.0));
        let mut store_b = ParamStore::new();
        store_b.add("w", Tensor::scalar(-5.0));
        let mut opt_a = Adam::new(0.3);
        let mut opt_b = Adam::new(0.3);
        for _ in 0..5 {
            quadratic_step(&mut store_a, &mut opt_a);
            quadratic_step(&mut store_b, &mut opt_b);
        }
        let json = serde_json::to_string(&opt_b.state()).unwrap();
        let mut opt_b2 = Adam::new(0.3);
        opt_b2.restore(serde_json::from_str(&json).unwrap());
        for _ in 0..5 {
            quadratic_step(&mut store_a, &mut opt_a);
            quadratic_step(&mut store_b, &mut opt_b2);
        }
        let id = store_a.ids().next().unwrap();
        assert_eq!(store_a.get(id).item().to_bits(), store_b.get(id).item().to_bits());
    }

    #[test]
    fn untouched_params_stay_put() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::scalar(1.0));
        let b = store.add("b", Tensor::scalar(2.0));
        let mut opt = Adam::new(0.5);
        let g = {
            let mut s = Session::new(&store);
            let w = s.param(a);
            let loss = s.tape.mul(w, w);
            s.tape.backward(loss);
            s.grads()
        };
        opt.step(&mut store, &g);
        assert_ne!(store.get(a).item(), 1.0);
        assert_eq!(store.get(b).item(), 2.0);
    }
}
