//! Loss helpers composed from tape primitives.
//!
//! Binary cross-entropy on logits is a fused tape op
//! ([`sem_tensor::Tape::bce_with_logits`]); the helpers here build the other
//! objectives the paper uses: the twin-network hinge ranking loss (Eq. 14)
//! and mean-squared error for diagnostics.

use sem_tensor::{Tape, Tensor, TensorId};

/// Hinge ranking loss `max(0, margin + smaller − larger)` (scalar inputs).
///
/// This is the paper's Eq. 14 written unambiguously: `larger` is the
/// embedding distance of the pair with the *larger* expert-rule difference,
/// which training should push above `smaller` by at least `margin`.
pub fn margin_ranking(
    tape: &mut Tape,
    larger: TensorId,
    smaller: TensorId,
    margin: f32,
) -> TensorId {
    let diff = tape.sub(smaller, larger);
    let m = tape.leaf(Tensor::scalar(margin));
    let shifted = tape.add(diff, m);
    tape.relu(shifted)
}

/// Mean squared error `mean((pred − target)²)`.
pub fn mse(tape: &mut Tape, pred: TensorId, target: TensorId) -> TensorId {
    let d = tape.sub(pred, target);
    let sq = tape.mul(d, d);
    tape.mean(sq)
}

/// Sums a non-empty list of scalar loss nodes.
///
/// # Panics
/// Panics when `terms` is empty.
pub fn total(tape: &mut Tape, terms: &[TensorId]) -> TensorId {
    let mut it = terms.iter().copied();
    let first = it.next().expect("total() of no loss terms");
    it.fold(first, |acc, t| tape.add(acc, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_ranking_zero_when_ordered() {
        let mut t = Tape::new();
        let large = t.leaf(Tensor::scalar(5.0));
        let small = t.leaf(Tensor::scalar(1.0));
        let loss = margin_ranking(&mut t, large, small, 1.0);
        assert_eq!(t.value(loss).item(), 0.0);
    }

    #[test]
    fn margin_ranking_positive_when_violated() {
        let mut t = Tape::new();
        let large = t.leaf(Tensor::scalar(1.0));
        let small = t.leaf(Tensor::scalar(5.0));
        let loss = margin_ranking(&mut t, large, small, 1.0);
        assert_eq!(t.value(loss).item(), 5.0);
        t.backward(loss);
        // gradient pushes `large` up, `small` down
        assert_eq!(t.grad(large).unwrap().item(), -1.0);
        assert_eq!(t.grad(small).unwrap().item(), 1.0);
    }

    #[test]
    fn margin_ranking_within_margin_still_penalised() {
        let mut t = Tape::new();
        let large = t.leaf(Tensor::scalar(1.2));
        let small = t.leaf(Tensor::scalar(1.0));
        let loss = margin_ranking(&mut t, large, small, 1.0);
        assert!((t.value(loss).item() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn mse_matches_manual() {
        let mut t = Tape::new();
        let p = t.leaf(Tensor::vector(&[1.0, 2.0]));
        let y = t.leaf(Tensor::vector(&[0.0, 4.0]));
        let loss = mse(&mut t, p, y);
        assert!((t.value(loss).item() - (1.0 + 4.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn total_sums() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::scalar(1.0));
        let b = t.leaf(Tensor::scalar(2.0));
        let c = t.leaf(Tensor::scalar(4.0));
        let s = total(&mut t, &[a, b, c]);
        assert_eq!(t.value(s).item(), 7.0);
    }

    #[test]
    #[should_panic(expected = "no loss terms")]
    fn total_empty_panics() {
        let mut t = Tape::new();
        let _ = total(&mut t, &[]);
    }
}
