//! Property tests for layers and optimizers.

use proptest::prelude::*;
use rand::SeedableRng;
use sem_nn::{Activation, Adam, Linear, Mlp, Optimizer, ParamStore, Session, Sgd};
use sem_tensor::Tensor;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linear layers are affine: f(x+y) − f(x) − f(y) + f(0) = 0.
    #[test]
    fn linear_is_affine(
        seed in 0u64..100,
        x in proptest::collection::vec(-2.0f32..2.0, 4),
        y in proptest::collection::vec(-2.0f32..2.0, 4),
    ) {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 3, &mut rng(seed));
        let apply = |v: &[f32]| -> Vec<f32> {
            let mut s = Session::new(&store);
            let inp = s.tape.leaf(Tensor::matrix(1, 4, v));
            let out = lin.forward(&mut s, inp);
            s.tape.value(out).data().to_vec()
        };
        let xy: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let zero = vec![0.0f32; 4];
        let (fx, fy, fxy, f0) = (apply(&x), apply(&y), apply(&xy), apply(&zero));
        for i in 0..3 {
            let resid = fxy[i] - fx[i] - fy[i] + f0[i];
            prop_assert!(resid.abs() < 1e-4, "residual {resid}");
        }
    }

    /// An identity-activation MLP is itself affine.
    #[test]
    fn identity_mlp_is_affine(seed in 0u64..50, x in proptest::collection::vec(-1.0f32..1.0, 3)) {
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 5, 2], Activation::Identity, false, &mut rng(seed));
        let apply = |v: &[f32]| -> Vec<f32> {
            let mut s = Session::new(&store);
            let inp = s.tape.leaf(Tensor::matrix(1, 3, v));
            let out = mlp.forward(&mut s, inp);
            s.tape.value(out).data().to_vec()
        };
        let two_x: Vec<f32> = x.iter().map(|v| 2.0 * v).collect();
        let zero = vec![0.0f32; 3];
        let (fx, f2x, f0) = (apply(&x), apply(&two_x), apply(&zero));
        // f(2x) - f(0) = 2 (f(x) - f(0)) for affine f
        for i in 0..2 {
            let lhs = f2x[i] - f0[i];
            let rhs = 2.0 * (fx[i] - f0[i]);
            prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
        }
    }

    /// One SGD step on a scalar moves the parameter against the gradient.
    #[test]
    fn sgd_moves_against_gradient(w0 in -5.0f32..5.0, target in -5.0f32..5.0) {
        prop_assume!((w0 - target).abs() > 1e-3);
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(w0));
        let mut opt = Sgd::new(0.01);
        let mut s = Session::new(&store);
        let w = s.param(id);
        let t = s.tape.leaf(Tensor::scalar(target));
        let d = s.tape.sub(w, t);
        let loss = s.tape.mul(d, d);
        s.tape.backward(loss);
        let g = s.grads();
        opt.step(&mut store, &g);
        let w1 = store.get(id).item();
        // moved toward the target
        prop_assert!((w1 - target).abs() < (w0 - target).abs());
    }

    /// Adam with clipping never produces a non-finite parameter, even for
    /// huge gradients.
    #[test]
    fn adam_is_stable_under_large_gradients(scale in 1.0f32..1e6) {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(1.0));
        let mut opt = Adam::new(0.1).with_clip(1.0);
        for _ in 0..5 {
            let mut s = Session::new(&store);
            let w = s.param(id);
            let big = s.tape.scale(w, scale);
            let loss = s.tape.mul(big, big);
            s.tape.backward(loss);
            let g = s.grads();
            opt.step(&mut store, &g);
            prop_assert!(store.get(id).item().is_finite());
        }
    }

    /// Parameter-store JSON round trips arbitrary shapes exactly.
    #[test]
    fn param_store_roundtrip(data in proptest::collection::vec(-10.0f32..10.0, 6)) {
        let mut store = ParamStore::new();
        store.add("m", Tensor::matrix(2, 3, &data));
        store.add("v", Tensor::vector(&data[..3]));
        let json = store.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        prop_assert_eq!(restored.num_weights(), store.num_weights());
        prop_assert!((restored.sq_norm() - store.sq_norm()).abs() < 1e-9);
    }
}
